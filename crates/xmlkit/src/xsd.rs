//! XSD-lite: structural schemas and a validator.
//!
//! The benchmark defines message schemas (XSD_Beijing, XSD_Seoul, the
//! Vienna/San-Diego/MDM message schemas, the generic result-set XSD) and
//! process P10 validates "error-prone" San Diego messages against one. This
//! module models the XSD subset those schemas need: nested element
//! sequences with occurrence bounds, required/optional attributes, and
//! simple types (string/int/decimal/date/enumeration).

use crate::node::{Document, Element, XmlNode};
use crate::value_types::{check_simple, SimpleType};

/// An attribute declaration.
#[derive(Debug, Clone)]
pub struct XsdAttr {
    pub name: String,
    pub required: bool,
    pub ty: SimpleType,
}

impl XsdAttr {
    pub fn required(name: impl Into<String>, ty: SimpleType) -> XsdAttr {
        XsdAttr {
            name: name.into(),
            required: true,
            ty,
        }
    }
    pub fn optional(name: impl Into<String>, ty: SimpleType) -> XsdAttr {
        XsdAttr {
            name: name.into(),
            required: false,
            ty,
        }
    }
}

/// Content model of an element.
#[derive(Debug, Clone)]
pub enum Content {
    /// Text content of the given simple type (leaf element).
    Simple(SimpleType),
    /// An ordered sequence of child particles; non-whitespace text is
    /// not allowed.
    Sequence(Vec<Particle>),
    /// Anything goes (used to stub foreign subtrees).
    Any,
    /// No children and no text.
    Empty,
}

/// A child-element occurrence constraint.
#[derive(Debug, Clone)]
pub struct Particle {
    pub element: XsdElement,
    pub min: u32,
    /// `None` = unbounded.
    pub max: Option<u32>,
}

/// An element declaration.
#[derive(Debug, Clone)]
pub struct XsdElement {
    pub name: String,
    pub attrs: Vec<XsdAttr>,
    pub content: Content,
}

impl XsdElement {
    /// A leaf element with typed text content.
    pub fn simple(name: impl Into<String>, ty: SimpleType) -> XsdElement {
        XsdElement {
            name: name.into(),
            attrs: Vec::new(),
            content: Content::Simple(ty),
        }
    }

    /// A container element with an ordered child sequence.
    pub fn sequence(name: impl Into<String>, children: Vec<Particle>) -> XsdElement {
        XsdElement {
            name: name.into(),
            attrs: Vec::new(),
            content: Content::Sequence(children),
        }
    }

    /// An element with unconstrained content.
    pub fn any(name: impl Into<String>) -> XsdElement {
        XsdElement {
            name: name.into(),
            attrs: Vec::new(),
            content: Content::Any,
        }
    }

    /// An element that must be empty.
    pub fn empty(name: impl Into<String>) -> XsdElement {
        XsdElement {
            name: name.into(),
            attrs: Vec::new(),
            content: Content::Empty,
        }
    }

    /// Builder: add an attribute declaration.
    pub fn with_attr(mut self, attr: XsdAttr) -> XsdElement {
        self.attrs.push(attr);
        self
    }

    /// Particle: exactly one.
    pub fn once(self) -> Particle {
        Particle {
            element: self,
            min: 1,
            max: Some(1),
        }
    }

    /// Particle: zero or one.
    pub fn optional(self) -> Particle {
        Particle {
            element: self,
            min: 0,
            max: Some(1),
        }
    }

    /// Particle: zero or more.
    pub fn many(self) -> Particle {
        Particle {
            element: self,
            min: 0,
            max: None,
        }
    }

    /// Particle: one or more.
    pub fn at_least_one(self) -> Particle {
        Particle {
            element: self,
            min: 1,
            max: None,
        }
    }

    /// Particle with explicit bounds.
    pub fn occurs(self, min: u32, max: Option<u32>) -> Particle {
        Particle {
            element: self,
            min,
            max,
        }
    }
}

/// A named schema with a single global root element.
#[derive(Debug, Clone)]
pub struct XsdSchema {
    pub name: String,
    pub root: XsdElement,
}

/// One validation problem; `path` is a `/`-separated element trail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationIssue {
    pub path: String,
    pub message: String,
}

impl std::fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

impl XsdSchema {
    pub fn new(name: impl Into<String>, root: XsdElement) -> XsdSchema {
        XsdSchema {
            name: name.into(),
            root,
        }
    }

    /// Validate a document, returning every issue found (empty = valid).
    pub fn validate(&self, doc: &Document) -> Vec<ValidationIssue> {
        let mut issues = Vec::new();
        if doc.root.name != self.root.name {
            issues.push(ValidationIssue {
                path: format!("/{}", doc.root.name),
                message: format!("expected root element <{}>", self.root.name),
            });
            return issues;
        }
        validate_element(
            &doc.root,
            &self.root,
            &format!("/{}", doc.root.name),
            &mut issues,
        );
        issues
    }

    pub fn is_valid(&self, doc: &Document) -> bool {
        self.validate(doc).is_empty()
    }
}

fn validate_element(e: &Element, decl: &XsdElement, path: &str, issues: &mut Vec<ValidationIssue>) {
    // attributes
    for a in &decl.attrs {
        match e.attribute(&a.name) {
            None if a.required => issues.push(ValidationIssue {
                path: path.to_string(),
                message: format!("missing required attribute @{}", a.name),
            }),
            Some(v) => {
                if let Err(msg) = check_simple(&a.ty, v) {
                    issues.push(ValidationIssue {
                        path: path.to_string(),
                        message: format!("attribute @{}: {msg}", a.name),
                    });
                }
            }
            None => {}
        }
    }
    for (n, _) in &e.attrs {
        if !decl.attrs.iter().any(|a| &a.name == n) {
            issues.push(ValidationIssue {
                path: path.to_string(),
                message: format!("unexpected attribute @{n}"),
            });
        }
    }
    // content
    match &decl.content {
        Content::Any => {}
        Content::Empty => {
            if !e.children.is_empty() {
                issues.push(ValidationIssue {
                    path: path.to_string(),
                    message: "element must be empty".into(),
                });
            }
        }
        Content::Simple(ty) => {
            if e.elements().next().is_some() {
                issues.push(ValidationIssue {
                    path: path.to_string(),
                    message: "simple-content element must not have child elements".into(),
                });
            }
            let text = e.text_content();
            if let Err(msg) = check_simple(ty, text.trim()) {
                issues.push(ValidationIssue {
                    path: path.to_string(),
                    message: msg,
                });
            }
        }
        Content::Sequence(particles) => {
            for c in &e.children {
                if let XmlNode::Text(t) = c {
                    if !t.trim().is_empty() {
                        issues.push(ValidationIssue {
                            path: path.to_string(),
                            message: "unexpected text content in sequence".into(),
                        });
                    }
                }
            }
            validate_sequence(e, particles, path, issues);
        }
    }
}

/// Greedy in-order matching of child elements against the particle list.
fn validate_sequence(
    e: &Element,
    particles: &[Particle],
    path: &str,
    issues: &mut Vec<ValidationIssue>,
) {
    let children: Vec<&Element> = e.elements().collect();
    let mut ci = 0usize;
    for p in particles {
        let mut count = 0u32;
        while ci < children.len()
            && children[ci].name == p.element.name
            && p.max.is_none_or(|m| count < m)
        {
            let child_path = format!("{path}/{}", children[ci].name);
            validate_element(children[ci], &p.element, &child_path, issues);
            ci += 1;
            count += 1;
        }
        if count < p.min {
            issues.push(ValidationIssue {
                path: path.to_string(),
                message: format!(
                    "expected at least {} <{}> element(s), found {count}",
                    p.min, p.element.name
                ),
            });
        }
    }
    while ci < children.len() {
        issues.push(ValidationIssue {
            path: path.to_string(),
            message: format!("unexpected element <{}>", children[ci].name),
        });
        ci += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// <order id(int) required> <custkey:int/> <state:enum/> <line:dec>* </order>
    fn schema() -> XsdSchema {
        XsdSchema::new(
            "test_order",
            XsdElement::sequence(
                "order",
                vec![
                    XsdElement::simple("custkey", SimpleType::Int).once(),
                    XsdElement::simple(
                        "state",
                        SimpleType::Enum(vec!["OPEN".into(), "CLOSED".into()]),
                    )
                    .once(),
                    XsdElement::simple("line", SimpleType::Decimal).many(),
                ],
            )
            .with_attr(XsdAttr::required("id", SimpleType::Int)),
        )
    }

    #[test]
    fn valid_document_passes() {
        let doc = parse(
            r#"<order id="7"><custkey>42</custkey><state>OPEN</state><line>1.5</line><line>2</line></order>"#,
        )
        .unwrap();
        assert!(schema().is_valid(&doc), "{:?}", schema().validate(&doc));
    }

    #[test]
    fn missing_required_child() {
        let doc = parse(r#"<order id="7"><state>OPEN</state></order>"#).unwrap();
        let issues = schema().validate(&doc);
        assert!(issues.iter().any(|i| i.message.contains("<custkey>")));
    }

    #[test]
    fn type_errors_detected() {
        let doc =
            parse(r#"<order id="x"><custkey>abc</custkey><state>WEIRD</state></order>"#).unwrap();
        let issues = schema().validate(&doc);
        assert_eq!(issues.len(), 3); // bad id, bad custkey, bad enum
    }

    #[test]
    fn unexpected_element_and_attr() {
        let doc = parse(
            r#"<order id="1" rogue="y"><custkey>1</custkey><state>OPEN</state><extra/></order>"#,
        )
        .unwrap();
        let issues = schema().validate(&doc);
        assert!(issues.iter().any(|i| i.message.contains("@rogue")));
        assert!(issues.iter().any(|i| i.message.contains("<extra>")));
    }

    #[test]
    fn wrong_root() {
        let doc = parse("<nope/>").unwrap();
        let issues = schema().validate(&doc);
        assert_eq!(issues.len(), 1);
        assert!(issues[0].message.contains("root"));
    }

    #[test]
    fn order_matters_in_sequence() {
        let doc =
            parse(r#"<order id="1"><state>OPEN</state><custkey>1</custkey></order>"#).unwrap();
        assert!(!schema().is_valid(&doc));
    }

    #[test]
    fn max_occurs_enforced() {
        let s = XsdSchema::new(
            "s",
            XsdElement::sequence(
                "r",
                vec![XsdElement::simple("x", SimpleType::Int).occurs(0, Some(2))],
            ),
        );
        let ok = parse("<r><x>1</x><x>2</x></r>").unwrap();
        assert!(s.is_valid(&ok));
        let bad = parse("<r><x>1</x><x>2</x><x>3</x></r>").unwrap();
        assert!(!s.is_valid(&bad));
    }
}
