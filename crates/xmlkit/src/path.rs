//! XPath-lite: a small path language for selecting elements, attribute
//! values and text content.
//!
//! Grammar (informal):
//!
//! ```text
//! path     := '/'? step ('/' step)*           absolute or relative
//! step     := name | '*' | '//' name          child, any child, descendant
//! terminal := step | '@' name | 'text()'      last step may select data
//! ```
//!
//! Examples: `/orders/order`, `order/@id`, `//custkey`, `customer/name/text()`.

use crate::error::{XmlError, XmlResult};
use crate::node::Element;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Step {
    Child(String),
    AnyChild,
    Descendant(String),
}

/// A compiled path.
#[derive(Debug, Clone)]
pub struct Path {
    steps: Vec<Step>,
    /// `Some(name)` selects the attribute; text selection is a flag.
    attr: Option<String>,
    text: bool,
}

impl Path {
    /// Compile a path expression.
    pub fn compile(expr: &str) -> XmlResult<Path> {
        let mut rest = expr.trim();
        if rest.is_empty() {
            return Err(XmlError::Path("empty path".into()));
        }
        // A leading '/' only anchors at the root element, which selection
        // always does anyway: strip it.
        if rest.starts_with('/') && !rest.starts_with("//") {
            rest = &rest[1..];
        }
        let mut steps = Vec::new();
        let mut attr = None;
        let mut text = false;
        while !rest.is_empty() {
            if let Some(r) = rest.strip_prefix("//") {
                let (name, r2) = take_name(r)?;
                steps.push(Step::Descendant(name));
                rest = r2;
            } else if let Some(r) = rest.strip_prefix('@') {
                let (name, r2) = take_name(r)?;
                if !r2.is_empty() {
                    return Err(XmlError::Path("attribute must be the last step".into()));
                }
                attr = Some(name);
                rest = r2;
            } else if let Some(r) = rest.strip_prefix("text()") {
                if !r.is_empty() {
                    return Err(XmlError::Path("text() must be the last step".into()));
                }
                text = true;
                rest = r;
            } else if let Some(r) = rest.strip_prefix('*') {
                steps.push(Step::AnyChild);
                rest = r;
            } else {
                let (name, r2) = take_name(rest)?;
                steps.push(Step::Child(name));
                rest = r2;
            }
            if let Some(r) = rest.strip_prefix('/') {
                rest = r;
            } else if !rest.is_empty() {
                return Err(XmlError::Path(format!("unexpected characters: {rest:?}")));
            }
        }
        Ok(Path { steps, attr, text })
    }

    /// Select matching elements below (and including, for the first step)
    /// `root`. The first step matches the root element itself when its name
    /// matches — so `/orders/order` against a document whose root is
    /// `<orders>` selects the `<order>` children.
    pub fn select<'a>(&self, root: &'a Element) -> Vec<&'a Element> {
        let mut current: Vec<&Element> = Vec::new();
        let mut steps = self.steps.iter();
        match steps.next() {
            None => current.push(root),
            Some(first) => match first {
                Step::Child(n) if &root.name == n => current.push(root),
                Step::AnyChild => current.push(root),
                Step::Descendant(n) => collect_descendants(root, n, &mut current),
                _ => {}
            },
        }
        for step in steps {
            let mut next = Vec::new();
            for e in current {
                match step {
                    Step::Child(n) => next.extend(e.elements().filter(|c| &c.name == n)),
                    Step::AnyChild => next.extend(e.elements()),
                    Step::Descendant(n) => {
                        for c in e.elements() {
                            collect_descendants(c, n, &mut next);
                        }
                    }
                }
            }
            current = next;
        }
        current
    }

    /// First matching element.
    pub fn first<'a>(&self, root: &'a Element) -> Option<&'a Element> {
        self.select(root).into_iter().next()
    }

    /// Evaluate to strings: attribute values, text content, or (for bare
    /// element paths) each match's text content.
    pub fn values(&self, root: &Element) -> Vec<String> {
        let elems = self.select(root);
        match (&self.attr, self.text) {
            (Some(a), _) => elems
                .iter()
                .filter_map(|e| e.attribute(a).map(str::to_string))
                .collect(),
            _ => elems.iter().map(|e| e.text_content()).collect(),
        }
    }

    /// First value, if any.
    pub fn value(&self, root: &Element) -> Option<String> {
        self.values(root).into_iter().next()
    }
}

fn collect_descendants<'a>(e: &'a Element, name: &str, out: &mut Vec<&'a Element>) {
    if e.name == name {
        out.push(e);
    }
    for c in e.elements() {
        collect_descendants(c, name, out);
    }
}

fn take_name(s: &str) -> XmlResult<(String, &str)> {
    let end = s
        .find(|c: char| !(c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':')))
        .unwrap_or(s.len());
    if end == 0 {
        return Err(XmlError::Path(format!("expected name at {s:?}")));
    }
    Ok((s[..end].to_string(), &s[end..]))
}

/// One-shot convenience: select elements by path expression.
pub fn select<'a>(root: &'a Element, expr: &str) -> XmlResult<Vec<&'a Element>> {
    Ok(Path::compile(expr)?.select(root))
}

/// One-shot convenience: first string value of a path expression.
pub fn value(root: &Element, expr: &str) -> XmlResult<Option<String>> {
    Ok(Path::compile(expr)?.value(root))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn doc() -> crate::node::Document {
        parse(
            r#"<orders region="eu">
                 <order id="1"><custkey>10</custkey></order>
                 <order id="2"><custkey>20</custkey></order>
                 <meta><nested><custkey>99</custkey></nested></meta>
               </orders>"#,
        )
        .unwrap()
    }

    #[test]
    fn child_paths() {
        let d = doc();
        let orders = select(&d.root, "/orders/order").unwrap();
        assert_eq!(orders.len(), 2);
        assert_eq!(
            value(&d.root, "orders/order/custkey").unwrap().as_deref(),
            Some("10")
        );
    }

    #[test]
    fn attributes_and_text() {
        let d = doc();
        let p = Path::compile("orders/order/@id").unwrap();
        assert_eq!(p.values(&d.root), vec!["1", "2"]);
        assert_eq!(
            value(&d.root, "orders/@region").unwrap().as_deref(),
            Some("eu")
        );
        assert_eq!(
            value(&d.root, "orders/order/custkey/text()")
                .unwrap()
                .as_deref(),
            Some("10")
        );
    }

    #[test]
    fn descendant_and_wildcard() {
        let d = doc();
        let all = select(&d.root, "//custkey").unwrap();
        assert_eq!(all.len(), 3);
        let any = select(&d.root, "orders/*").unwrap();
        assert_eq!(any.len(), 3); // two orders + meta
    }

    #[test]
    fn bad_paths_rejected() {
        assert!(Path::compile("").is_err());
        assert!(Path::compile("a/@x/y").is_err());
        assert!(Path::compile("a/text()/b").is_err());
        assert!(Path::compile("a//").is_err());
    }

    #[test]
    fn no_match_is_empty() {
        let d = doc();
        assert!(select(&d.root, "orders/nothing").unwrap().is_empty());
        assert_eq!(value(&d.root, "wrongroot/x").unwrap(), None);
    }
}
