//! STX-like streaming XML transformations.
//!
//! The paper's schema translations (P01: XSD_Beijing → XSD_Seoul, P02:
//! MDM → Europe, P08/P09/P10: source schemas → CDB schema) are specified as
//! STX stylesheets — *streaming* transformations over a SAX event stream
//! (Becker, "Streaming Transformations for XML", 2003). This module
//! implements the subset those translations need: template rules matched on
//! the current element path, with rename / drop / unwrap / attribute and
//! text-vocabulary actions, executed in a single pass over the event stream
//! with O(depth) state.

use crate::error::{XmlError, XmlResult};
use crate::node::Document;
use crate::sax::{build, events, SaxEvent};
use std::collections::HashMap;

/// How a rule selects elements.
#[derive(Debug, Clone)]
pub enum Match {
    /// Any element with this name.
    Name(String),
    /// An element whose path of (original) names ends with this suffix,
    /// e.g. `["order", "state"]` matches `<state>` directly under `<order>`.
    PathSuffix(Vec<String>),
}

impl Match {
    fn matches(&self, path: &[String]) -> bool {
        match self {
            Match::Name(n) => path.last().map(String::as_str) == Some(n),
            Match::PathSuffix(suffix) => {
                path.len() >= suffix.len() && path.ends_with(suffix.as_slice())
            }
        }
    }
}

/// What to do with a matched element.
#[derive(Debug, Clone)]
pub enum Action {
    /// Emit the element under a different name.
    Rename(String),
    /// Drop the element and its entire subtree.
    Drop,
    /// Drop the element's own tags but keep (and keep transforming) its
    /// children — flattens one level of structure.
    Unwrap,
    /// Replace text content through a vocabulary map (the semantic
    /// heterogeneity mapping, e.g. priority-flag vocabularies); unmapped
    /// values pass through unchanged.
    MapText(HashMap<String, String>),
    /// Rename an attribute.
    RenameAttr { from: String, to: String },
    /// Remove an attribute.
    DropAttr(String),
    /// Add or overwrite an attribute with a constant value.
    SetAttr { name: String, value: String },
    /// Turn every attribute into a leading child element
    /// (`<o id="1"/>` → `<o><id>1</id></o>`).
    AttrsToElements,
}

/// A template rule: first matching rule wins, all its actions apply.
#[derive(Debug, Clone)]
pub struct Rule {
    pub matcher: Match,
    pub actions: Vec<Action>,
}

impl Rule {
    pub fn for_name(name: impl Into<String>) -> RuleBuilder {
        RuleBuilder {
            matcher: Match::Name(name.into()),
            actions: Vec::new(),
        }
    }

    pub fn for_path(suffix: &[&str]) -> RuleBuilder {
        RuleBuilder {
            matcher: Match::PathSuffix(suffix.iter().map(|s| s.to_string()).collect()),
            actions: Vec::new(),
        }
    }
}

/// Fluent rule construction.
pub struct RuleBuilder {
    matcher: Match,
    actions: Vec<Action>,
}

impl RuleBuilder {
    pub fn rename(mut self, to: impl Into<String>) -> RuleBuilder {
        self.actions.push(Action::Rename(to.into()));
        self
    }
    pub fn drop(mut self) -> RuleBuilder {
        self.actions.push(Action::Drop);
        self
    }
    pub fn unwrap_element(mut self) -> RuleBuilder {
        self.actions.push(Action::Unwrap);
        self
    }
    pub fn map_text(mut self, pairs: &[(&str, &str)]) -> RuleBuilder {
        let map = pairs
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        self.actions.push(Action::MapText(map));
        self
    }
    pub fn rename_attr(mut self, from: impl Into<String>, to: impl Into<String>) -> RuleBuilder {
        self.actions.push(Action::RenameAttr {
            from: from.into(),
            to: to.into(),
        });
        self
    }
    pub fn drop_attr(mut self, name: impl Into<String>) -> RuleBuilder {
        self.actions.push(Action::DropAttr(name.into()));
        self
    }
    pub fn set_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> RuleBuilder {
        self.actions.push(Action::SetAttr {
            name: name.into(),
            value: value.into(),
        });
        self
    }
    pub fn attrs_to_elements(mut self) -> RuleBuilder {
        self.actions.push(Action::AttrsToElements);
        self
    }
    pub fn build(self) -> Rule {
        Rule {
            matcher: self.matcher,
            actions: self.actions,
        }
    }
}

/// A named stylesheet: an ordered list of template rules.
#[derive(Debug, Clone)]
pub struct Stylesheet {
    pub name: String,
    pub rules: Vec<Rule>,
}

/// Per-open-element transformation state.
struct Frame {
    /// Name to emit on the end event; `None` while unwrapped.
    emit_name: Option<String>,
    /// Active text map for direct text children.
    text_map: Option<HashMap<String, String>>,
}

impl Stylesheet {
    pub fn new(name: impl Into<String>, rules: Vec<Rule>) -> Stylesheet {
        Stylesheet {
            name: name.into(),
            rules,
        }
    }

    /// The identity stylesheet.
    pub fn identity(name: impl Into<String>) -> Stylesheet {
        Stylesheet::new(name, Vec::new())
    }

    fn find_rule(&self, path: &[String]) -> Option<&Rule> {
        self.rules.iter().find(|r| r.matcher.matches(path))
    }

    /// Transform a SAX event stream in one pass.
    pub fn transform_events(&self, input: &[SaxEvent]) -> XmlResult<Vec<SaxEvent>> {
        let _span = dip_trace::span_cat(
            dip_trace::Layer::Xmlkit,
            "stx_transform",
            dip_trace::Category::Processing,
        );
        let mut out = Vec::with_capacity(input.len());
        let mut path: Vec<String> = Vec::new();
        let mut frames: Vec<Frame> = Vec::new();
        // While dropping a subtree: depth below the dropped element.
        let mut drop_depth: Option<usize> = None;

        for ev in input {
            match ev {
                SaxEvent::StartElement { name, attrs } => {
                    path.push(name.clone());
                    if let Some(d) = drop_depth.as_mut() {
                        *d += 1;
                        continue;
                    }
                    let rule = self.find_rule(&path);
                    let mut emit_name = Some(name.clone());
                    let mut out_attrs = attrs.clone();
                    let mut text_map = None;
                    let mut attrs_to_elements = false;
                    if let Some(rule) = rule {
                        for action in &rule.actions {
                            match action {
                                Action::Drop => {
                                    drop_depth = Some(0);
                                }
                                Action::Unwrap => emit_name = None,
                                Action::Rename(to) => {
                                    if emit_name.is_some() {
                                        emit_name = Some(to.clone());
                                    }
                                }
                                Action::MapText(m) => text_map = Some(m.clone()),
                                Action::RenameAttr { from, to } => {
                                    for (n, _) in out_attrs.iter_mut() {
                                        if n == from {
                                            *n = to.clone();
                                        }
                                    }
                                }
                                Action::DropAttr(a) => out_attrs.retain(|(n, _)| n != a),
                                Action::SetAttr { name, value } => {
                                    match out_attrs.iter_mut().find(|(n, _)| n == name) {
                                        Some((_, v)) => *v = value.clone(),
                                        None => out_attrs.push((name.clone(), value.clone())),
                                    }
                                }
                                Action::AttrsToElements => attrs_to_elements = true,
                            }
                        }
                    }
                    if drop_depth.is_some() {
                        // element dropped: remember no frame; the drop
                        // counter tracks nesting from here on.
                        continue;
                    }
                    if let Some(n) = &emit_name {
                        let final_attrs = if attrs_to_elements {
                            Vec::new()
                        } else {
                            out_attrs.clone()
                        };
                        out.push(SaxEvent::StartElement {
                            name: n.clone(),
                            attrs: final_attrs,
                        });
                        if attrs_to_elements {
                            for (an, av) in &out_attrs {
                                out.push(SaxEvent::StartElement {
                                    name: an.clone(),
                                    attrs: vec![],
                                });
                                out.push(SaxEvent::Text(av.clone()));
                                out.push(SaxEvent::EndElement { name: an.clone() });
                            }
                        }
                    }
                    frames.push(Frame {
                        emit_name,
                        text_map,
                    });
                }
                SaxEvent::Text(t) => {
                    if drop_depth.is_some() {
                        continue;
                    }
                    let mapped = frames
                        .last()
                        .and_then(|f| f.text_map.as_ref())
                        .and_then(|m| m.get(t.trim()))
                        .cloned()
                        .unwrap_or_else(|| t.clone());
                    out.push(SaxEvent::Text(mapped));
                }
                SaxEvent::EndElement { .. } => {
                    path.pop();
                    match drop_depth.as_mut() {
                        Some(0) => {
                            drop_depth = None; // the dropped element itself closed
                        }
                        Some(d) => {
                            *d -= 1;
                        }
                        None => {
                            let frame = frames.pop().ok_or_else(|| {
                                XmlError::Transform("unbalanced input stream".into())
                            })?;
                            if let Some(n) = frame.emit_name {
                                out.push(SaxEvent::EndElement { name: n });
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Transform a whole document (events → transform → rebuild).
    pub fn transform(&self, doc: &Document) -> XmlResult<Document> {
        let evs = events(doc);
        let out = self.transform_events(&evs)?;
        build(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::writer::write_compact;

    #[test]
    fn rename_and_map_text() {
        // the P01-style Beijing → Seoul translation shape
        let sheet = Stylesheet::new(
            "beijing_to_seoul",
            vec![
                Rule::for_name("bj_customer").rename("customer").build(),
                Rule::for_name("bj_priority")
                    .rename("prio")
                    .map_text(&[("HIGH", "1"), ("MED", "2"), ("LOW", "3")])
                    .build(),
            ],
        );
        let doc = parse("<bj_customer><bj_priority>HIGH</bj_priority></bj_customer>").unwrap();
        let out = sheet.transform(&doc).unwrap();
        assert_eq!(
            write_compact(&out),
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?><customer><prio>1</prio></customer>"
        );
    }

    #[test]
    fn unmapped_text_passes_through() {
        let sheet = Stylesheet::new(
            "s",
            vec![Rule::for_name("p").map_text(&[("A", "B")]).build()],
        );
        let doc = parse("<p>UNKNOWN</p>").unwrap();
        let out = sheet.transform(&doc).unwrap();
        assert_eq!(out.root.text_content(), "UNKNOWN");
    }

    #[test]
    fn drop_removes_subtree() {
        let sheet = Stylesheet::new("s", vec![Rule::for_name("internal").drop().build()]);
        let doc = parse(
            "<msg><keep>1</keep><internal><deep><deeper/></deep></internal><keep>2</keep></msg>",
        )
        .unwrap();
        let out = sheet.transform(&doc).unwrap();
        assert_eq!(out.root.elements().count(), 2);
        assert!(out.root.first("internal").is_none());
    }

    #[test]
    fn unwrap_flattens_one_level() {
        let sheet = Stylesheet::new(
            "s",
            vec![Rule::for_name("wrapper").unwrap_element().build()],
        );
        let doc = parse("<msg><wrapper><a>1</a><b>2</b></wrapper></msg>").unwrap();
        let out = sheet.transform(&doc).unwrap();
        assert_eq!(out.root.child_text("a").as_deref(), Some("1"));
        assert_eq!(out.root.child_text("b").as_deref(), Some("2"));
    }

    #[test]
    fn path_suffix_scopes_rule() {
        // rename <state> only under <order>, not under <customer>
        let sheet = Stylesheet::new(
            "s",
            vec![Rule::for_path(&["order", "state"]).rename("ostate").build()],
        );
        let doc =
            parse("<m><order><state>O</state></order><customer><state>C</state></customer></m>")
                .unwrap();
        let out = sheet.transform(&doc).unwrap();
        assert!(out.root.first("order").unwrap().first("ostate").is_some());
        assert!(out.root.first("customer").unwrap().first("state").is_some());
    }

    #[test]
    fn attribute_actions() {
        let sheet = Stylesheet::new(
            "s",
            vec![Rule::for_name("o")
                .rename_attr("id", "okey")
                .drop_attr("junk")
                .set_attr("src", "mdm")
                .build()],
        );
        let doc = parse(r#"<o id="5" junk="x"/>"#).unwrap();
        let out = sheet.transform(&doc).unwrap();
        assert_eq!(out.root.attribute("okey"), Some("5"));
        assert_eq!(out.root.attribute("junk"), None);
        assert_eq!(out.root.attribute("src"), Some("mdm"));
    }

    #[test]
    fn attrs_to_elements() {
        let sheet = Stylesheet::new("s", vec![Rule::for_name("row").attrs_to_elements().build()]);
        let doc = parse(r#"<t><row a="1" b="x"/></t>"#).unwrap();
        let out = sheet.transform(&doc).unwrap();
        let row = out.root.first("row").unwrap();
        assert!(row.attrs.is_empty());
        assert_eq!(row.child_text("a").as_deref(), Some("1"));
        assert_eq!(row.child_text("b").as_deref(), Some("x"));
    }

    #[test]
    fn first_matching_rule_wins() {
        let sheet = Stylesheet::new(
            "s",
            vec![
                Rule::for_name("x").rename("first").build(),
                Rule::for_name("x").rename("second").build(),
            ],
        );
        let doc = parse("<x/>").unwrap();
        let out = sheet.transform(&doc).unwrap();
        assert_eq!(out.root.name, "first");
    }

    #[test]
    fn identity_is_lossless() {
        let doc = parse(r#"<a q="1"><b>t</b><c><d/></c></a>"#).unwrap();
        let out = Stylesheet::identity("id").transform(&doc).unwrap();
        assert_eq!(out, doc);
    }

    #[test]
    fn nested_drop_of_same_name() {
        let sheet = Stylesheet::new("s", vec![Rule::for_name("kill").drop().build()]);
        let doc = parse("<m><kill><kill/></kill><ok/></m>").unwrap();
        let out = sheet.transform(&doc).unwrap();
        assert_eq!(out.root.elements().count(), 1);
    }
}
