//! XML error types.

use std::fmt;

/// Errors from parsing, path evaluation or transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Malformed document; includes byte offset and description.
    Parse { offset: usize, message: String },
    /// A path expression was malformed or did not resolve.
    Path(String),
    /// A transformation rule failed.
    Transform(String),
}

impl XmlError {
    pub fn parse(offset: usize, message: impl Into<String>) -> XmlError {
        XmlError::Parse {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Parse { offset, message } => {
                write!(f, "XML parse error at byte {offset}: {message}")
            }
            XmlError::Path(m) => write!(f, "XML path error: {m}"),
            XmlError::Transform(m) => write!(f, "XML transform error: {m}"),
        }
    }
}

impl std::error::Error for XmlError {}

pub type XmlResult<T> = Result<T, XmlError>;
