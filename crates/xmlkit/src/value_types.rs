//! Simple types shared by the XSD validator and the result-set codec.

/// XSD-style simple types for text and attribute content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimpleType {
    /// Any text.
    String,
    /// Optionally-signed integer.
    Int,
    /// Decimal number (integer or fraction).
    Decimal,
    /// `YYYY-MM-DD`.
    Date,
    /// One of an enumerated vocabulary (exact match).
    Enum(Vec<String>),
}

/// Check a lexical value against a simple type; `Err` carries a message.
pub fn check_simple(ty: &SimpleType, text: &str) -> Result<(), String> {
    match ty {
        SimpleType::String => Ok(()),
        SimpleType::Int => {
            if text.parse::<i64>().is_ok() {
                Ok(())
            } else {
                Err(format!("{text:?} is not an integer"))
            }
        }
        SimpleType::Decimal => {
            if text.parse::<f64>().is_ok() && !text.is_empty() {
                Ok(())
            } else {
                Err(format!("{text:?} is not a decimal"))
            }
        }
        SimpleType::Date => {
            let ok = text.len() == 10
                && text.as_bytes()[4] == b'-'
                && text.as_bytes()[7] == b'-'
                && text[..4].parse::<u32>().is_ok()
                && matches!(text[5..7].parse::<u32>(), Ok(1..=12))
                && matches!(text[8..10].parse::<u32>(), Ok(1..=31));
            if ok {
                Ok(())
            } else {
                Err(format!("{text:?} is not a date (YYYY-MM-DD)"))
            }
        }
        SimpleType::Enum(vocab) => {
            if vocab.iter().any(|v| v == text) {
                Ok(())
            } else {
                Err(format!("{text:?} not in enumeration {vocab:?}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_decimal() {
        assert!(check_simple(&SimpleType::Int, "-42").is_ok());
        assert!(check_simple(&SimpleType::Int, "4.2").is_err());
        assert!(check_simple(&SimpleType::Decimal, "4.2").is_ok());
        assert!(check_simple(&SimpleType::Decimal, "4").is_ok());
        assert!(check_simple(&SimpleType::Decimal, "").is_err());
        assert!(check_simple(&SimpleType::Decimal, "x").is_err());
    }

    #[test]
    fn date() {
        assert!(check_simple(&SimpleType::Date, "2008-04-12").is_ok());
        assert!(check_simple(&SimpleType::Date, "2008-13-12").is_err());
        assert!(check_simple(&SimpleType::Date, "2008-4-12").is_err());
        assert!(check_simple(&SimpleType::Date, "garbage").is_err());
    }

    #[test]
    fn enumeration() {
        let e = SimpleType::Enum(vec!["HIGH".into(), "LOW".into()]);
        assert!(check_simple(&e, "HIGH").is_ok());
        assert!(check_simple(&e, "high").is_err());
    }
}
