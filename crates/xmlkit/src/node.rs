//! The XML tree model: documents, elements, text nodes.

use std::fmt;

/// A node in the tree: an element or a text run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlNode {
    Element(Element),
    Text(String),
}

impl XmlNode {
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            XmlNode::Element(e) => Some(e),
            XmlNode::Text(_) => None,
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        match self {
            XmlNode::Text(t) => Some(t),
            XmlNode::Element(_) => None,
        }
    }
}

/// An XML element: name, attributes (ordered), children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    pub name: String,
    pub attrs: Vec<(String, String)>,
    pub children: Vec<XmlNode>,
}

impl Element {
    pub fn new(name: impl Into<String>) -> Element {
        Element {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder: add an attribute.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Element {
        self.attrs.push((name.into(), value.into()));
        self
    }

    /// Builder: add a child element.
    pub fn child(mut self, e: Element) -> Element {
        self.children.push(XmlNode::Element(e));
        self
    }

    /// Builder: add a text child.
    pub fn text(mut self, t: impl Into<String>) -> Element {
        self.children.push(XmlNode::Text(t.into()));
        self
    }

    /// Builder: a leaf element wrapping a single text value — the most
    /// common shape in the benchmark's message schemas.
    pub fn leaf(name: impl Into<String>, value: impl Into<String>) -> Element {
        Element::new(name).text(value)
    }

    /// Attribute value by name.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Set (or replace) an attribute in place.
    pub fn set_attribute(&mut self, name: &str, value: impl Into<String>) {
        match self.attrs.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = value.into(),
            None => self.attrs.push((name.to_string(), value.into())),
        }
    }

    /// Child elements (skipping text nodes).
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(XmlNode::as_element)
    }

    /// First child element with the given name.
    pub fn first(&self, name: &str) -> Option<&Element> {
        self.elements().find(|e| e.name == name)
    }

    /// All child elements with the given name.
    pub fn all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> {
        self.elements().filter(move |e| e.name == name)
    }

    /// Concatenated text content of this element (direct text children only).
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        for c in &self.children {
            if let XmlNode::Text(t) = c {
                out.push_str(t);
            }
        }
        out
    }

    /// Text of the first child element with the given name — the accessor
    /// used everywhere for `<custkey>42</custkey>`-style leaves.
    pub fn child_text(&self, name: &str) -> Option<String> {
        self.first(name).map(|e| e.text_content())
    }

    /// Total number of element nodes in this subtree (including self).
    pub fn subtree_size(&self) -> usize {
        1 + self.elements().map(|e| e.subtree_size()).sum::<usize>()
    }

    /// Depth of the deepest element below (and including) this one.
    pub fn depth(&self) -> usize {
        1 + self.elements().map(|e| e.depth()).max().unwrap_or(0)
    }
}

/// A parsed XML document (prolog is not preserved; the root element is).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    pub root: Element,
}

impl Document {
    pub fn new(root: Element) -> Document {
        Document { root }
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::writer::write_compact(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Element {
        Element::new("order")
            .attr("id", "7")
            .child(Element::leaf("custkey", "42"))
            .child(Element::leaf("state", "OPEN"))
            .child(Element::new("lines").child(Element::leaf("line", "1")))
    }

    #[test]
    fn accessors() {
        let e = doc();
        assert_eq!(e.attribute("id"), Some("7"));
        assert_eq!(e.attribute("missing"), None);
        assert_eq!(e.child_text("custkey").as_deref(), Some("42"));
        assert_eq!(e.first("lines").unwrap().elements().count(), 1);
        assert_eq!(e.subtree_size(), 5);
        assert_eq!(e.depth(), 3);
    }

    #[test]
    fn set_attribute_replaces() {
        let mut e = doc();
        e.set_attribute("id", "8");
        e.set_attribute("new", "x");
        assert_eq!(e.attribute("id"), Some("8"));
        assert_eq!(e.attribute("new"), Some("x"));
        assert_eq!(e.attrs.len(), 2);
    }

    #[test]
    fn text_content_concatenates() {
        let e = Element::new("t")
            .text("a")
            .child(Element::leaf("x", "skip"))
            .text("b");
        assert_eq!(e.text_content(), "ab");
    }
}
