//! XML serialization (compact and pretty).

use crate::node::{Document, Element, XmlNode};

/// Serialize without insignificant whitespace (round-trips through the
/// parser, which drops whitespace-only text runs).
pub fn write_compact(doc: &Document) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    write_element(&doc.root, &mut out);
    out
}

/// Byte length of [`write_compact`]'s output, computed without building
/// the string — wire-size accounting calls this once per web-service
/// round trip, where serializing a whole document just to measure it
/// would dominate the call.
pub fn compact_len(doc: &Document) -> usize {
    const PROLOG: &str = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    PROLOG.len() + element_len(&doc.root)
}

fn element_len(e: &Element) -> usize {
    // "<name" + per-attr " n=\"v\"" + ("/>" | ">" children "</name>")
    let mut len = 1 + e.name.len();
    for (n, v) in &e.attrs {
        len += 1 + n.len() + 2 + escaped_len(v, true) + 1;
    }
    if e.children.is_empty() {
        return len + 2;
    }
    len += 1;
    for c in &e.children {
        len += match c {
            XmlNode::Element(child) => element_len(child),
            XmlNode::Text(t) => escaped_len(t, false),
        };
    }
    len + 2 + e.name.len() + 1
}

/// Byte length [`escape_into`] would append for `s`.
fn escaped_len(s: &str, attr: bool) -> usize {
    s.chars()
        .map(|ch| match ch {
            '<' | '>' => 4,
            '&' => 5,
            '"' if attr => 6,
            _ => ch.len_utf8(),
        })
        .sum()
}

/// Serialize with two-space indentation; mixed-content elements are kept
/// on one line to preserve their text exactly.
pub fn write_pretty(doc: &Document) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    write_element_pretty(&doc.root, &mut out, 0);
    out.push('\n');
    out
}

fn write_element(e: &Element, out: &mut String) {
    out.push('<');
    out.push_str(&e.name);
    for (n, v) in &e.attrs {
        out.push(' ');
        out.push_str(n);
        out.push_str("=\"");
        escape_into(v, true, out);
        out.push('"');
    }
    if e.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for c in &e.children {
        match c {
            XmlNode::Element(child) => write_element(child, out),
            XmlNode::Text(t) => escape_into(t, false, out),
        }
    }
    out.push_str("</");
    out.push_str(&e.name);
    out.push('>');
}

fn write_element_pretty(e: &Element, out: &mut String, depth: usize) {
    let pad = "  ".repeat(depth);
    out.push_str(&pad);
    out.push('<');
    out.push_str(&e.name);
    for (n, v) in &e.attrs {
        out.push(' ');
        out.push_str(n);
        out.push_str("=\"");
        escape_into(v, true, out);
        out.push('"');
    }
    if e.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    let has_text = e.children.iter().any(|c| matches!(c, XmlNode::Text(_)));
    if has_text {
        // mixed or text content: keep inline
        for c in &e.children {
            match c {
                XmlNode::Element(child) => write_element(child, out),
                XmlNode::Text(t) => escape_into(t, false, out),
            }
        }
    } else {
        for c in &e.children {
            if let XmlNode::Element(child) = c {
                out.push('\n');
                write_element_pretty(child, out, depth + 1);
            }
        }
        out.push('\n');
        out.push_str(&pad);
    }
    out.push_str("</");
    out.push_str(&e.name);
    out.push('>');
}

/// Escape markup characters; in attribute context also quotes.
fn escape_into(s: &str, attr: bool, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if attr => out.push_str("&quot;"),
            _ => out.push(ch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn roundtrip_compact() {
        let src = r#"<order id="a &quot;b&quot;"><k>1 &lt; 2</k><empty/></order>"#;
        let doc = parse(src).unwrap();
        let out = write_compact(&doc);
        let doc2 = parse(&out).unwrap();
        assert_eq!(doc, doc2);
    }

    #[test]
    fn compact_len_matches_serialization() {
        let docs = [
            r#"<order id="a &quot;b&quot;"><k>1 &lt; 2</k><empty/></order>"#,
            "<a><b><c>x&amp;y</c></b><d/></a>",
            r#"<r enc="&lt;&gt;">Straße &amp; Gärten</r>"#,
        ];
        for src in docs {
            let doc = parse(src).unwrap();
            assert_eq!(compact_len(&doc), write_compact(&doc).len(), "doc {src}");
        }
    }

    #[test]
    fn pretty_is_reparseable() {
        let doc = parse("<a><b><c>x</c></b><d/></a>").unwrap();
        let pretty = write_pretty(&doc);
        assert!(pretty.contains("\n  <b>"));
        assert_eq!(parse(&pretty).unwrap(), doc);
    }
}
