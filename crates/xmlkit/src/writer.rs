//! XML serialization (compact and pretty).

use crate::node::{Document, Element, XmlNode};

/// Serialize without insignificant whitespace (round-trips through the
/// parser, which drops whitespace-only text runs).
pub fn write_compact(doc: &Document) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    write_element(&doc.root, &mut out);
    out
}

/// Serialize with two-space indentation; mixed-content elements are kept
/// on one line to preserve their text exactly.
pub fn write_pretty(doc: &Document) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    write_element_pretty(&doc.root, &mut out, 0);
    out.push('\n');
    out
}

fn write_element(e: &Element, out: &mut String) {
    out.push('<');
    out.push_str(&e.name);
    for (n, v) in &e.attrs {
        out.push(' ');
        out.push_str(n);
        out.push_str("=\"");
        escape_into(v, true, out);
        out.push('"');
    }
    if e.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for c in &e.children {
        match c {
            XmlNode::Element(child) => write_element(child, out),
            XmlNode::Text(t) => escape_into(t, false, out),
        }
    }
    out.push_str("</");
    out.push_str(&e.name);
    out.push('>');
}

fn write_element_pretty(e: &Element, out: &mut String, depth: usize) {
    let pad = "  ".repeat(depth);
    out.push_str(&pad);
    out.push('<');
    out.push_str(&e.name);
    for (n, v) in &e.attrs {
        out.push(' ');
        out.push_str(n);
        out.push_str("=\"");
        escape_into(v, true, out);
        out.push('"');
    }
    if e.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    let has_text = e.children.iter().any(|c| matches!(c, XmlNode::Text(_)));
    if has_text {
        // mixed or text content: keep inline
        for c in &e.children {
            match c {
                XmlNode::Element(child) => write_element(child, out),
                XmlNode::Text(t) => escape_into(t, false, out),
            }
        }
    } else {
        for c in &e.children {
            if let XmlNode::Element(child) = c {
                out.push('\n');
                write_element_pretty(child, out, depth + 1);
            }
        }
        out.push('\n');
        out.push_str(&pad);
    }
    out.push_str("</");
    out.push_str(&e.name);
    out.push('>');
}

/// Escape markup characters; in attribute context also quotes.
fn escape_into(s: &str, attr: bool, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if attr => out.push_str("&quot;"),
            _ => out.push(ch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn roundtrip_compact() {
        let src = r#"<order id="a &quot;b&quot;"><k>1 &lt; 2</k><empty/></order>"#;
        let doc = parse(src).unwrap();
        let out = write_compact(&doc);
        let doc2 = parse(&out).unwrap();
        assert_eq!(doc, doc2);
    }

    #[test]
    fn pretty_is_reparseable() {
        let doc = parse("<a><b><c>x</c></b><d/></a>").unwrap();
        let pretty = write_pretty(&doc);
        assert!(pretty.contains("\n  <b>"));
        assert_eq!(parse(&pretty).unwrap(), doc);
    }
}
