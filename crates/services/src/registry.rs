//! The service registry: named endpoints reached over the simulated
//! network, with communication-cost accounting.
//!
//! Integration engines never talk to a [`WebService`] or a remote
//! [`Database`] directly — they go through an [`ExternalWorld`], which
//! routes the call over [`dip_netsim::Network`] and reports the modeled
//! communication delay. That delay is what the benchmark monitor charges
//! to the `Cc` (communication) cost category.

use crate::resilience::{Attempt, Resilience};
use crate::webservice::{ServiceError, ServiceResult, WebService};
use dip_netsim::fault;
use dip_relstore::error::TransportFault;
use dip_relstore::prelude::*;
use dip_xmlkit::compact_len;
use dip_xmlkit::node::Document;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// A call result paired with the modeled communication delay.
#[derive(Debug)]
pub struct Remote<T> {
    pub value: T,
    pub comm: Duration,
}

/// How rows are applied to a target table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Plain insert through the target's trigger machinery; duplicate keys
    /// are an error.
    Insert,
    /// Skip rows whose primary key already exists (replication merges).
    InsertIgnore,
    /// Insert-or-replace by primary key (master-data updates).
    Upsert,
}

/// Everything an integration system can reach: databases and web services,
/// each bound to a netsim endpoint.
pub struct ExternalWorld {
    pub network: Arc<dip_netsim::Network>,
    /// The caller's own endpoint (normally the integration system, `is`).
    pub self_endpoint: String,
    databases: HashMap<String, (String, Arc<Database>)>,
    services: HashMap<String, (String, Arc<dyn WebService>)>,
    /// Retry/breaker layer, armed only when the network carries a fault
    /// plan; `None` keeps every round trip on the historical fast path.
    resilience: Option<Arc<Resilience>>,
}

impl std::fmt::Debug for ExternalWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExternalWorld")
            .field("databases", &self.databases.keys().collect::<Vec<_>>())
            .field("services", &self.services.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl ExternalWorld {
    pub fn new(network: Arc<dip_netsim::Network>, self_endpoint: impl Into<String>) -> Self {
        ExternalWorld {
            network,
            self_endpoint: self_endpoint.into(),
            databases: HashMap::new(),
            services: HashMap::new(),
            resilience: None,
        }
    }

    /// Engage the resilience layer for all subsequent remote/WS calls.
    pub fn arm_resilience(&mut self, resilience: Arc<Resilience>) {
        self.resilience = Some(resilience);
    }

    /// The armed resilience layer, if any.
    pub fn resilience(&self) -> Option<&Arc<Resilience>> {
        self.resilience.as_ref()
    }

    /// Register a database under a logical name at a network endpoint.
    pub fn add_database(&mut self, name: &str, endpoint: &str, db: Arc<Database>) {
        self.databases
            .insert(name.to_lowercase(), (endpoint.to_string(), db));
    }

    /// Register a web service at a network endpoint.
    pub fn add_service(&mut self, endpoint: &str, ws: Arc<dyn WebService>) {
        self.services
            .insert(ws.name().to_lowercase(), (endpoint.to_string(), ws));
    }

    /// Direct handle to a database (for initialization/verification, which
    /// happen outside the measured phase and bypass the network model).
    pub fn database(&self, name: &str) -> StoreResult<Arc<Database>> {
        self.databases
            .get(&name.to_lowercase())
            .map(|(_, db)| db.clone())
            .ok_or_else(|| StoreError::Invalid(format!("unknown external database {name}")))
    }

    pub fn service(&self, name: &str) -> ServiceResult<Arc<dyn WebService>> {
        self.services
            .get(&name.to_lowercase())
            .map(|(_, s)| s.clone())
            .ok_or_else(|| ServiceError::UnknownOperation(format!("unknown service {name}")))
    }

    pub fn database_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.databases.keys().cloned().collect();
        v.sort();
        v
    }

    pub fn service_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.services.keys().cloned().collect();
        v.sort();
        v
    }

    fn db_entry(&self, name: &str) -> StoreResult<(String, Arc<Database>)> {
        self.databases
            .get(&name.to_lowercase())
            .cloned()
            .ok_or_else(|| StoreError::Invalid(format!("unknown external database {name}")))
    }

    /// Estimate the wire size of a relation (rendered values + separators)
    /// without rendering anything.
    fn relation_bytes(rel: &Relation) -> usize {
        rel.rows
            .iter()
            .map(|r| r.iter().map(|v| v.rendered_len() + 1).sum::<usize>())
            .sum()
    }

    /// One request → remote effect → response round trip over the network.
    ///
    /// The resilience layer engages only when it is armed, the network
    /// carries an active fault plan, and the call runs inside an instance
    /// fault scope — otherwise this is exactly the historical unguarded
    /// path (no verdicts, no clock, no breaker). When engaged, both legs'
    /// fault verdicts are evaluated *before* `effect` runs, so a retried
    /// attempt never re-executes the remote side effect; timeout and
    /// backoff waits are folded into the returned communication delay.
    fn round_trip<T, E>(
        &self,
        endpoint: &str,
        req_bytes: usize,
        effect: impl FnOnce() -> Result<T, E>,
        resp_bytes: impl FnOnce(&T) -> usize,
    ) -> Result<Remote<T>, E>
    where
        E: From<TransportFault>,
    {
        // Deterministic crash/abort injection: every round trip is one
        // materialization step. The check runs *before* the effect, so a
        // planned step is all-or-nothing — the instance's partial state is
        // whatever earlier steps materialized, which the enclosing
        // transaction scope rolls back. A crash is non-transient (the
        // system is dead; recovery replays the instance); an abort is a
        // transient fault with retries exhausted (the message dead-letters
        // and is never replayed).
        match fault::step_point() {
            fault::StepVerdict::Pass => {}
            fault::StepVerdict::Crash => {
                return Err(E::from(TransportFault {
                    endpoint: endpoint.to_string(),
                    kind: TransportKind::Crash,
                    attempts: 0,
                }));
            }
            fault::StepVerdict::Abort => {
                return Err(E::from(TransportFault {
                    endpoint: endpoint.to_string(),
                    kind: TransportKind::Drop,
                    attempts: 0,
                }));
            }
        }
        let guarded = self
            .resilience
            .as_ref()
            .filter(|_| self.network.has_faults())
            .and_then(|r| fault::begin_op().map(|op| (r, op)));
        let (wasted, slow_req, slow_resp) = match guarded {
            None => (Duration::ZERO, 1.0, 1.0),
            Some((r, op)) => match r.decide(&self.network, &self.self_endpoint, endpoint, &op) {
                Attempt::Proceed {
                    wasted,
                    slow_req,
                    slow_resp,
                    ..
                } => (wasted, slow_req, slow_resp),
                Attempt::Exhausted(f) => return Err(E::from(f)),
            },
        };
        let req = self
            .network
            .transfer_scaled(&self.self_endpoint, endpoint, req_bytes, slow_req);
        let value = effect()?;
        let resp = self.network.transfer_scaled(
            endpoint,
            &self.self_endpoint,
            resp_bytes(&value),
            slow_resp,
        );
        Ok(Remote {
            value,
            comm: wasted + req + resp,
        })
    }

    /// Run a query plan on a remote database; the request costs a small
    /// fixed payload, the response is charged by result size. Executes
    /// with the process-global default [`ExecMode`].
    pub fn remote_query(&self, db_name: &str, plan: &Plan) -> StoreResult<Remote<Relation>> {
        self.remote_query_with(db_name, plan, default_mode())
    }

    /// Like [`Self::remote_query`], with an explicit executor mode (lets a
    /// caller model an unoptimized remote execution path).
    pub fn remote_query_with(
        &self,
        db_name: &str,
        plan: &Plan,
        mode: ExecMode,
    ) -> StoreResult<Remote<Relation>> {
        let (endpoint, db) = self.db_entry(db_name)?;
        self.round_trip(
            &endpoint,
            256,
            || execute(plan, &db, mode),
            Self::relation_bytes,
        )
    }

    /// Drain a remote table's change-capture log — the change-data-capture
    /// pull an incremental view-maintenance consumer issues instead of a
    /// full-table query. The request is a small cursor payload; the
    /// response is charged by delta size, which is the whole point: a pull
    /// on an unchanged table ships (almost) nothing. The drain is
    /// undo-journaled by the table, so an enclosing transaction scope that
    /// rolls back restores the log and the delta is re-deliverable.
    pub fn remote_pull_changes(
        &self,
        db_name: &str,
        table: &str,
    ) -> StoreResult<Remote<Vec<Change>>> {
        let (endpoint, db) = self.db_entry(db_name)?;
        self.round_trip(
            &endpoint,
            128,
            || Ok(db.table(table)?.drain_changes()),
            |changes: &Vec<Change>| {
                changes
                    .iter()
                    .map(|c| {
                        let row = match c {
                            Change::Insert(r) | Change::Delete(r) => r,
                        };
                        row.iter().map(|v| v.rendered_len() + 1).sum::<usize>() + 1
                    })
                    .sum()
            },
        )
    }

    /// Insert rows into a remote table (through the remote database's
    /// trigger machinery).
    pub fn remote_insert(
        &self,
        db_name: &str,
        table: &str,
        rows: Vec<Row>,
    ) -> StoreResult<Remote<usize>> {
        self.remote_load(db_name, table, rows, LoadMode::Insert)
    }

    /// Insert rows into a remote table with explicit duplicate handling.
    /// `LoadMode::Insert` goes through the remote trigger machinery; the
    /// merge/upsert modes write the table directly (no triggers fire, as
    /// with bulk-load paths in real DBMSs).
    pub fn remote_load(
        &self,
        db_name: &str,
        table: &str,
        rows: Vec<Row>,
        mode: LoadMode,
    ) -> StoreResult<Remote<usize>> {
        let (endpoint, db) = self.db_entry(db_name)?;
        let bytes: usize = rows
            .iter()
            .map(|r| r.iter().map(|v| v.rendered_len() + 1).sum::<usize>())
            .sum();
        self.round_trip(
            &endpoint,
            bytes + 128,
            || match mode {
                LoadMode::Insert => db.insert_into(table, rows),
                LoadMode::InsertIgnore => db.table(table)?.insert_ignore_duplicates(rows),
                LoadMode::Upsert => db.table(table)?.upsert(rows),
            },
            |_| 64,
        )
    }

    /// Delete matching rows from a remote table.
    pub fn remote_delete(
        &self,
        db_name: &str,
        table: &str,
        predicate: &Expr,
    ) -> StoreResult<Remote<usize>> {
        let (endpoint, db) = self.db_entry(db_name)?;
        self.round_trip(
            &endpoint,
            128,
            || db.table(table)?.delete_where(predicate),
            |_| 64,
        )
    }

    /// Call a stored procedure on a remote database.
    pub fn remote_call(
        &self,
        db_name: &str,
        proc: &str,
        args: &[Value],
    ) -> StoreResult<Remote<Option<Relation>>> {
        let (endpoint, db) = self.db_entry(db_name)?;
        self.round_trip(
            &endpoint,
            128,
            || db.call_procedure(proc, args),
            |out| out.as_ref().map(Self::relation_bytes).unwrap_or(16) + 64,
        )
    }

    /// Query a web service operation (returns result-set XML).
    pub fn ws_query(&self, service: &str, operation: &str) -> ServiceResult<Remote<Document>> {
        let (endpoint, ws) = self
            .services
            .get(&service.to_lowercase())
            .cloned()
            .ok_or_else(|| ServiceError::UnknownOperation(format!("unknown service {service}")))?;
        self.round_trip(&endpoint, 256, || ws.query(operation), compact_len)
    }

    /// Send an update document to a web service operation.
    pub fn ws_update(
        &self,
        service: &str,
        operation: &str,
        doc: &Document,
    ) -> ServiceResult<Remote<usize>> {
        let (endpoint, ws) = self
            .services
            .get(&service.to_lowercase())
            .cloned()
            .ok_or_else(|| ServiceError::UnknownOperation(format!("unknown service {service}")))?;
        let bytes = compact_len(doc);
        self.round_trip(&endpoint, bytes, || ws.update(operation, doc), |_| 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::webservice::DbService;
    use dip_netsim::{LatencyModel, LinkSpec, Network, TransferMode};

    fn world() -> ExternalWorld {
        let net = Arc::new(Network::new(
            LinkSpec::new(LatencyModel::Fixed { micros: 100 }, 1_000_000),
            TransferMode::Accounted,
            9,
        ));
        let mut w = ExternalWorld::new(net, "is");
        let db = Arc::new(Database::new("berlin"));
        let schema = RelSchema::of(&[("id", SqlType::Int)]).shared();
        db.create_table(
            Table::new("t", schema.clone())
                .with_primary_key(&["id"])
                .unwrap(),
        );
        w.add_database("berlin", "es.berlin_paris", db.clone());
        let ws_db = Arc::new(Database::new("beijing_db"));
        ws_db.create_table(Table::new("t", schema).with_primary_key(&["id"]).unwrap());
        w.add_service("es.ws.beijing", Arc::new(DbService::new("beijing", ws_db)));
        w
    }

    #[test]
    fn remote_insert_and_query_charge_comm() {
        let w = world();
        let ins = w
            .remote_insert(
                "berlin",
                "t",
                vec![vec![Value::Int(1)], vec![Value::Int(2)]],
            )
            .unwrap();
        assert_eq!(ins.value, 2);
        assert!(ins.comm >= Duration::from_micros(200)); // two fixed latencies
        let q = w.remote_query("berlin", &Plan::scan("t")).unwrap();
        assert_eq!(q.value.len(), 2);
        assert!(q.comm > Duration::ZERO);
    }

    #[test]
    fn ws_roundtrip() {
        let w = world();
        let schema = RelSchema::of(&[("id", SqlType::Int)]).shared();
        let rel = Relation::new(schema, vec![vec![Value::Int(7)]]);
        let doc = crate::resultset::encode("x", "t", &rel);
        let up = w.ws_update("beijing", "t", &doc).unwrap();
        assert_eq!(up.value, 1);
        let q = w.ws_query("beijing", "t").unwrap();
        assert_eq!(q.value.root.all("row").count(), 1);
    }

    #[test]
    fn unknown_names_error() {
        let w = world();
        assert!(w.remote_query("nope", &Plan::scan("t")).is_err());
        assert!(w.ws_query("nope", "t").is_err());
        assert!(w.database("nope").is_err());
    }
}
