//! # dip-services — external systems layer
//!
//! The DIPBench environment's source and target systems beyond the plain
//! databases: Web services wrapping data sources ([`webservice`]), the
//! generic result-set codec those services speak ([`resultset`]), the
//! proprietary message-emitting applications Vienna / San Diego / MDM
//! Europe / Hongkong ([`apps`]), and the [`registry::ExternalWorld`] that
//! routes every call over the simulated network and reports communication
//! costs.

pub mod apps;
pub mod registry;
pub mod resilience;
pub mod resultset;
pub mod webservice;

pub use registry::{ExternalWorld, Remote};
pub use resilience::{BreakerState, CircuitBreaker, Resilience, ResiliencePolicy};
pub use webservice::{DbService, ServiceError, ServiceResult, WebService};
