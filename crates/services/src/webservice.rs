//! Web services wrapping relational data sources.
//!
//! The region-Asia sources (Hongkong, Beijing, Seoul) are "data sources
//! hidden by Web services": a [`DbService`] exposes the tables of a
//! [`Database`] through `query` (returning generic result-set XML) and
//! `update` (accepting result-set XML) operations. Each service manages its
//! master data locally, which is why P01 replicates master data between
//! Beijing and Seoul.

use crate::resultset;
use dip_relstore::prelude::*;
use dip_xmlkit::node::Document;
use std::sync::Arc;

/// Errors surfaced by service operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    UnknownOperation(String),
    Store(StoreError),
    Malformed(String),
    /// A transport-level failure reaching the service endpoint.
    /// Transient: the retry/breaker layer keys off this variant.
    Transport(TransportFault),
}

impl ServiceError {
    /// Whether retrying the same call could plausibly succeed. Delegates
    /// to the wrapped store error so transport-ness survives layering.
    /// An injected crash travels as a transport fault but is not transient.
    pub fn is_transient(&self) -> bool {
        self.transport().is_some_and(|t| t.is_transient())
    }

    /// The transport fault carried by this error, if any.
    pub fn transport(&self) -> Option<&TransportFault> {
        match self {
            ServiceError::Transport(t) => Some(t),
            ServiceError::Store(e) => e.transport(),
            _ => None,
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownOperation(o) => write!(f, "unknown operation: {o}"),
            ServiceError::Store(e) => write!(f, "store error: {e}"),
            ServiceError::Malformed(m) => write!(f, "malformed request: {m}"),
            ServiceError::Transport(t) => write!(f, "{t}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<TransportFault> for ServiceError {
    fn from(t: TransportFault) -> Self {
        ServiceError::Transport(t)
    }
}

impl From<StoreError> for ServiceError {
    fn from(e: StoreError) -> Self {
        // keep transport faults at the top of the enum so `transport()`
        // callers see one shape regardless of which layer raised it
        match e {
            StoreError::Transport(t) => ServiceError::Transport(t),
            other => ServiceError::Store(other),
        }
    }
}

pub type ServiceResult<T> = Result<T, ServiceError>;

/// A web service endpoint.
pub trait WebService: Send + Sync {
    /// The service name (also its netsim endpoint suffix).
    fn name(&self) -> &str;

    /// `query(table)` — return the full table as a result-set document.
    fn query(&self, operation: &str) -> ServiceResult<Document>;

    /// `update(table, doc)` — merge a result-set document into a table
    /// (insert-ignore-duplicates for rows whose key already exists).
    fn update(&self, operation: &str, doc: &Document) -> ServiceResult<usize>;
}

/// A web service backed by a relstore database: every table is an
/// operation.
pub struct DbService {
    name: String,
    pub db: Arc<Database>,
}

impl DbService {
    pub fn new(name: impl Into<String>, db: Arc<Database>) -> DbService {
        DbService {
            name: name.into(),
            db,
        }
    }
}

impl WebService for DbService {
    fn name(&self) -> &str {
        &self.name
    }

    fn query(&self, operation: &str) -> ServiceResult<Document> {
        if !self.db.has_table(operation) {
            return Err(ServiceError::UnknownOperation(operation.to_string()));
        }
        let rel = self.db.table(operation)?.scan();
        Ok(resultset::encode(&self.name, operation, &rel))
    }

    fn update(&self, operation: &str, doc: &Document) -> ServiceResult<usize> {
        if !self.db.has_table(operation) {
            return Err(ServiceError::UnknownOperation(operation.to_string()));
        }
        let table = self.db.table(operation)?;
        let rel = resultset::decode(doc, &table.schema)
            .map_err(|e| ServiceError::Malformed(e.to_string()))?;
        Ok(table.insert_ignore_duplicates(rel.rows)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> DbService {
        let db = Arc::new(Database::new("beijing"));
        let schema = RelSchema::of(&[("k", SqlType::Int), ("v", SqlType::Str)]).shared();
        let t = Table::new("part", schema).with_primary_key(&["k"]).unwrap();
        t.insert(vec![vec![Value::Int(1), Value::str("bolt")]])
            .unwrap();
        db.create_table(t);
        DbService::new("beijing", db)
    }

    #[test]
    fn query_returns_resultset() {
        let s = service();
        let doc = s.query("part").unwrap();
        assert_eq!(doc.root.name, "resultSet");
        assert_eq!(doc.root.all("row").count(), 1);
        assert!(matches!(
            s.query("nope"),
            Err(ServiceError::UnknownOperation(_))
        ));
    }

    #[test]
    fn update_merges() {
        let s = service();
        let schema = s.db.table("part").unwrap().schema.clone();
        let rel = Relation::new(
            schema,
            vec![
                vec![Value::Int(1), Value::str("dup — skipped")],
                vec![Value::Int(2), Value::str("nut")],
            ],
        );
        let doc = resultset::encode("x", "part", &rel);
        let n = s.update("part", &doc).unwrap();
        assert_eq!(n, 1);
        assert_eq!(s.db.table("part").unwrap().row_count(), 2);
    }

    #[test]
    fn update_rejects_garbage() {
        let s = service();
        let doc = Document::new(dip_xmlkit::Element::new("garbage"));
        assert!(matches!(
            s.update("part", &doc),
            Err(ServiceError::Malformed(_))
        ));
    }
}
