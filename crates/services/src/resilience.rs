//! Resilience policy: per-endpoint timeouts, bounded exponential-backoff
//! retry, and a per-endpoint circuit breaker.
//!
//! The policy wraps the round trips of [`crate::registry::ExternalWorld`]
//! when the network carries an active fault plan. Design constraints:
//!
//! - **Zero-cost happy path.** When no fault plan is armed (or a call runs
//!   outside an instance fault scope, i.e. initialization/verification),
//!   the round trip takes the exact pre-resilience code path — no verdict
//!   evaluation, no clock reads, no breaker locks.
//! - **Fail before effect.** Both transfer legs' fault verdicts are
//!   evaluated *before* the remote side effect executes, so a retried
//!   attempt never duplicates an insert. This models request-level
//!   idempotency tokens; `docs/RESILIENCE.md` discusses the choice.
//! - **Virtual-clock aware.** Timeout waits and backoff pauses go through
//!   a [`ClockRef`]: eager (accounted) runs advance a virtual clock
//!   instantly, `RealSleep` runs use the wall clock and actually block.
//!   Either way the waited time is charged to communication cost `Cc` —
//!   waiting on a dead link is time spent on the network.
//! - **Deterministic breaker.** The breaker counts *exhausted operations*
//!   (all attempts failed), not individual attempt faults: at realistic
//!   drop rates with a few retries, exhaustion is rare enough that the
//!   breaker stays out of the schedule and determinism is preserved.
//!   Partition windows are the intended trigger — a severed link exhausts
//!   every operation immediately and deterministically.

use dip_netsim::clock::ClockRef;
use dip_netsim::fault::{self, LinkFault, OpKey};
use dip_netsim::{Network, Verdict};
use dip_relstore::error::{TransportFault, TransportKind};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Retry/timeout/breaker knobs, per benchmark run. `Copy` so it can ride
/// inside `BenchConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResiliencePolicy {
    /// Total attempts per operation (1 = no retry).
    pub max_attempts: u32,
    /// First backoff pause; doubles per attempt.
    pub base_backoff_micros: u64,
    /// Backoff ceiling.
    pub max_backoff_micros: u64,
    /// Modeled time a caller waits before declaring a drop/stall lost.
    pub call_timeout_micros: u64,
    /// Consecutive exhausted operations that open an endpoint's breaker;
    /// 0 disables the breaker.
    pub breaker_threshold: u32,
    /// Open → half-open after this much clock time.
    pub breaker_cooldown_micros: u64,
}

impl ResiliencePolicy {
    /// The benchmark default: 4 attempts, 2 ms..16 ms backoff, 50 ms call
    /// timeout, breaker at 8 consecutive exhaustions with 200 ms cooldown.
    pub const DEFAULT: ResiliencePolicy = ResiliencePolicy {
        max_attempts: 4,
        base_backoff_micros: 2_000,
        max_backoff_micros: 16_000,
        call_timeout_micros: 50_000,
        breaker_threshold: 8,
        breaker_cooldown_micros: 200_000,
    };

    /// No retries, no breaker — every transport fault surfaces at once.
    pub const NO_RETRY: ResiliencePolicy = ResiliencePolicy {
        max_attempts: 1,
        base_backoff_micros: 0,
        max_backoff_micros: 0,
        call_timeout_micros: 50_000,
        breaker_threshold: 0,
        breaker_cooldown_micros: 0,
    };

    pub fn with_attempts(mut self, attempts: u32) -> ResiliencePolicy {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Backoff pause before retrying after `attempt` (0-based) failed.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.base_backoff_micros.saturating_shl(attempt.min(16));
        Duration::from_micros(exp.min(self.max_backoff_micros))
    }

    pub fn call_timeout(&self) -> Duration {
        Duration::from_micros(self.call_timeout_micros)
    }
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy::DEFAULT
    }
}

/// Breaker states, exposed for tests and the `faults` CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

struct BreakerInner {
    consecutive_failures: u32,
    /// Clock time at which the breaker opened (None = closed/half-open).
    opened_at: Option<Duration>,
    half_open: bool,
}

/// A per-endpoint circuit breaker on a shared clock.
pub struct CircuitBreaker {
    policy: ResiliencePolicy,
    clock: ClockRef,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    pub fn new(policy: ResiliencePolicy, clock: ClockRef) -> CircuitBreaker {
        CircuitBreaker {
            policy,
            clock,
            inner: Mutex::new(BreakerInner {
                consecutive_failures: 0,
                opened_at: None,
                half_open: false,
            }),
        }
    }

    pub fn state(&self) -> BreakerState {
        let inner = self.inner.lock();
        if inner.half_open {
            BreakerState::HalfOpen
        } else if inner.opened_at.is_some() {
            BreakerState::Open
        } else {
            BreakerState::Closed
        }
    }

    /// May an operation proceed? Open breakers reject until the cooldown
    /// elapses, then admit a single half-open probe.
    pub fn admit(&self) -> bool {
        if self.policy.breaker_threshold == 0 {
            return true;
        }
        let mut inner = self.inner.lock();
        match inner.opened_at {
            None => true,
            Some(opened) => {
                let cooldown = Duration::from_micros(self.policy.breaker_cooldown_micros);
                if self.clock.now().saturating_sub(opened) >= cooldown {
                    // half-open: admit this probe; further calls keep being
                    // rejected until the probe reports back
                    inner.opened_at = None;
                    inner.half_open = true;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Report an operation that completed (any non-transport outcome).
    pub fn record_success(&self) {
        if self.policy.breaker_threshold == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.consecutive_failures = 0;
        inner.half_open = false;
        inner.opened_at = None;
    }

    /// Report an operation that exhausted its transport retries. Returns
    /// true if this report opened the breaker.
    pub fn record_exhausted(&self) -> bool {
        if self.policy.breaker_threshold == 0 {
            return false;
        }
        let mut inner = self.inner.lock();
        if inner.half_open {
            // failed probe: reopen immediately
            inner.half_open = false;
            inner.opened_at = Some(self.clock.now());
            return true;
        }
        inner.consecutive_failures += 1;
        if inner.consecutive_failures >= self.policy.breaker_threshold && inner.opened_at.is_none()
        {
            inner.opened_at = Some(self.clock.now());
            return true;
        }
        false
    }
}

/// The armed resilience layer: policy + clock + per-endpoint breakers.
pub struct Resilience {
    pub policy: ResiliencePolicy,
    clock: ClockRef,
    breakers: Mutex<HashMap<String, Arc<CircuitBreaker>>>,
}

impl std::fmt::Debug for Resilience {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Resilience")
            .field("policy", &self.policy)
            .finish()
    }
}

/// What the retry loop decided for one operation.
pub enum Attempt {
    /// Deliver on attempt `attempt`, after `wasted` of timeout/backoff
    /// waiting; the two legs' slow factors scale the real transfers.
    Proceed {
        attempt: u32,
        wasted: Duration,
        slow_req: f64,
        slow_resp: f64,
    },
    /// Retries exhausted (or breaker open); the typed fault to surface.
    Exhausted(TransportFault),
}

impl Resilience {
    pub fn new(policy: ResiliencePolicy, clock: ClockRef) -> Resilience {
        Resilience {
            policy,
            clock,
            breakers: Mutex::new(HashMap::new()),
        }
    }

    pub fn breaker(&self, endpoint: &str) -> Arc<CircuitBreaker> {
        self.breakers
            .lock()
            .entry(endpoint.to_string())
            .or_insert_with(|| Arc::new(CircuitBreaker::new(self.policy, self.clock.clone())))
            .clone()
    }

    /// Run the retry loop for one operation against `endpoint`: evaluate
    /// both legs' fault verdicts per attempt (failing *before* any remote
    /// side effect), waiting out timeouts and backoffs on the clock. The
    /// caller performs the actual transfers and side effect only when
    /// `Attempt::Proceed` is returned, then reports the final outcome via
    /// [`CircuitBreaker::record_success`] / `record_exhausted` (handled
    /// here in [`Resilience::conclude`]).
    pub fn decide(&self, network: &Network, from: &str, to: &str, op: &OpKey) -> Attempt {
        let breaker = self.breaker(to);
        let mut wasted = Duration::ZERO;
        let mut attempt = 0u32;
        loop {
            if !breaker.admit() {
                dip_trace::count("resilience.breaker_rejected", 1);
                return Attempt::Exhausted(TransportFault {
                    endpoint: to.to_string(),
                    kind: TransportKind::CircuitOpen,
                    attempts: attempt,
                });
            }
            let v_req = network.fault_verdict(from, to, op, attempt, 0);
            let v_resp = network.fault_verdict(to, from, op, attempt, 1);
            match (v_req, v_resp) {
                (Verdict::Deliver { slow_factor: sr }, Verdict::Deliver { slow_factor: sp }) => {
                    if attempt > 0 {
                        dip_trace::count("resilience.retries", attempt as u64);
                        fault::note_retries(attempt);
                    }
                    breaker.record_success();
                    return Attempt::Proceed {
                        attempt,
                        wasted,
                        slow_req: sr,
                        slow_resp: sp,
                    };
                }
                (v1, v2) => {
                    let link_fault = match (v1, v2) {
                        (Verdict::Fault(f), _) | (_, Verdict::Fault(f)) => f,
                        // unreachable: the outer match already handled the
                        // double-Deliver case; keep a sane default anyway
                        _ => LinkFault::Drop,
                    };
                    // waiting out a lost message is communication time;
                    // partitions are detected immediately (connection
                    // refused), so they cost nothing to discover
                    let wait = match link_fault {
                        LinkFault::Partition => Duration::ZERO,
                        LinkFault::Drop | LinkFault::Timeout => self.policy.call_timeout(),
                    };
                    self.clock.sleep(wait);
                    wasted += wait;
                    attempt += 1;
                    if attempt >= self.policy.max_attempts {
                        dip_trace::count("resilience.retries", (attempt - 1) as u64);
                        fault::note_retries(attempt - 1);
                        if breaker.record_exhausted() {
                            dip_trace::count("resilience.breaker_open", 1);
                        }
                        return Attempt::Exhausted(TransportFault {
                            endpoint: to.to_string(),
                            kind: match link_fault {
                                LinkFault::Partition => TransportKind::Partition,
                                LinkFault::Timeout => TransportKind::Timeout,
                                LinkFault::Drop => TransportKind::Drop,
                            },
                            attempts: attempt,
                        });
                    }
                    let pause = self.policy.backoff(attempt - 1);
                    self.clock.sleep(pause);
                    wasted += pause;
                }
            }
        }
    }
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        self.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_netsim::virtual_clock;

    fn policy() -> ResiliencePolicy {
        ResiliencePolicy {
            breaker_threshold: 3,
            breaker_cooldown_micros: 1_000,
            ..ResiliencePolicy::DEFAULT
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = ResiliencePolicy::DEFAULT;
        assert_eq!(p.backoff(0), Duration::from_micros(2_000));
        assert_eq!(p.backoff(1), Duration::from_micros(4_000));
        assert_eq!(p.backoff(2), Duration::from_micros(8_000));
        assert_eq!(p.backoff(3), Duration::from_micros(16_000));
        assert_eq!(p.backoff(10), Duration::from_micros(16_000));
        assert_eq!(p.backoff(u32::MAX), Duration::from_micros(16_000));
    }

    #[test]
    fn breaker_opens_half_opens_and_closes_on_virtual_clock() {
        let (clock, handle) = virtual_clock();
        let b = CircuitBreaker::new(policy(), clock);
        assert_eq!(b.state(), BreakerState::Closed);
        // three consecutive exhaustions open it
        assert!(!b.record_exhausted());
        assert!(!b.record_exhausted());
        assert!(b.record_exhausted());
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admit(), "open breaker rejects");
        // cooldown elapses on the virtual clock → half-open probe admitted
        handle.advance(Duration::from_micros(1_000));
        assert!(b.admit());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // probe succeeds → closed again
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit());
    }

    #[test]
    fn failed_half_open_probe_reopens() {
        let (clock, handle) = virtual_clock();
        let b = CircuitBreaker::new(policy(), clock);
        for _ in 0..3 {
            b.record_exhausted();
        }
        handle.advance(Duration::from_micros(1_000));
        assert!(b.admit());
        assert!(b.record_exhausted(), "failed probe reopens");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admit());
    }

    #[test]
    fn zero_threshold_disables_breaker() {
        let (clock, _) = virtual_clock();
        let b = CircuitBreaker::new(ResiliencePolicy::NO_RETRY, clock);
        for _ in 0..100 {
            assert!(!b.record_exhausted());
        }
        assert!(b.admit());
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn virtual_clock_sleeps_do_not_block() {
        use dip_netsim::{Clock, LatencyModel, LinkSpec, Network, TransferMode};
        let (clock, handle) = virtual_clock();
        let r = Resilience::new(ResiliencePolicy::DEFAULT, clock);
        let mut net = Network::new(
            LinkSpec::new(LatencyModel::Fixed { micros: 10 }, 0),
            TransferMode::Accounted,
            3,
        );
        net.set_default_fault_model(Some(dip_netsim::FaultModel::drops(1.0)));
        let op = OpKey::synthetic(1, 0);
        let t = std::time::Instant::now();
        let out = r.decide(&net, "is", "es.x", &op);
        assert!(t.elapsed() < Duration::from_millis(50), "must not sleep");
        match out {
            Attempt::Exhausted(f) => {
                assert_eq!(f.kind, TransportKind::Drop);
                assert_eq!(f.attempts, 4);
            }
            Attempt::Proceed { .. } => panic!("100% drop cannot deliver"),
        }
        // 4 timeouts + 3 backoffs advanced the virtual clock
        assert!(handle.now() >= Duration::from_micros(4 * 50_000));
    }
}
