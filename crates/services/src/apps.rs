//! The proprietary message-emitting applications: Vienna, San Diego and
//! MDM Europe, plus the Hongkong push messages and the Beijing/Seoul
//! master-data exchange documents.
//!
//! Each application has its own deep-structured XML schema (the paper's
//! syntactic heterogeneity); San Diego is "very error-prone", so its
//! builder can inject specific error kinds that P10's validation step must
//! catch.

use dip_xmlkit::node::{Document, Element};

/// Plain order payload used by the message builders. The field *values*
/// come from the benchmark's data generator; the builders only decide the
/// XML shape.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderData {
    pub orderkey: i64,
    pub custkey: i64,
    /// `YYYY-MM-DD`.
    pub orderdate: String,
    /// Region-specific priority vocabulary (semantic heterogeneity).
    pub priority: String,
    /// Region-specific order-state vocabulary.
    pub state: String,
    pub totalprice: f64,
    pub lines: Vec<OrderLineData>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderLineData {
    pub lineno: i64,
    pub prodkey: i64,
    pub quantity: i64,
    pub extendedprice: f64,
    pub discount: f64,
}

/// Customer master-data payload.
#[derive(Debug, Clone, PartialEq)]
pub struct CustomerData {
    pub custkey: i64,
    pub name: String,
    pub address: String,
    pub city: String,
    pub nation: String,
    pub region: String,
    pub segment: String,
    pub phone: String,
    pub acctbal: f64,
}

/// Product master-data payload.
#[derive(Debug, Clone, PartialEq)]
pub struct PartData {
    pub prodkey: i64,
    pub name: String,
    pub group: String,
    pub line: String,
    pub price: f64,
}

/// Error kinds the San Diego application injects (P10 must route these to
/// the failed-data tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageError {
    /// A required field is missing.
    MissingField,
    /// A numeric field carries a non-numeric value.
    BadType,
    /// A vocabulary field carries an unknown token.
    WrongVocabulary,
    /// An element the schema does not allow.
    UnexpectedElement,
}

/// All injectable error kinds (for sweep-style tests).
pub const ALL_MESSAGE_ERRORS: [MessageError; 4] = [
    MessageError::MissingField,
    MessageError::BadType,
    MessageError::WrongVocabulary,
    MessageError::UnexpectedElement,
];

fn lines_element(name: &str, line_name: &str, lines: &[OrderLineData]) -> Element {
    let mut e = Element::new(name);
    for l in lines {
        e = e.child(
            Element::new(line_name)
                .child(Element::leaf("lineNo", l.lineno.to_string()))
                .child(Element::leaf("prodKey", l.prodkey.to_string()))
                .child(Element::leaf("quantity", l.quantity.to_string()))
                .child(Element::leaf(
                    "extendedPrice",
                    format!("{:.2}", l.extendedprice),
                ))
                .child(Element::leaf("discount", format!("{:.2}", l.discount))),
        );
    }
    e
}

/// The Vienna application's order message (deep-structured; carries only a
/// customer *reference* — P04 enriches it with master data from the CDB).
pub fn vienna_order(o: &OrderData) -> Document {
    let root = Element::new("viennaOrder")
        .child(
            Element::new("orderHeader")
                .child(Element::leaf("orderKey", o.orderkey.to_string()))
                .child(Element::leaf("orderDate", o.orderdate.clone()))
                .child(Element::leaf("priority", o.priority.clone()))
                .child(Element::leaf("state", o.state.clone()))
                .child(Element::leaf("totalPrice", format!("{:.2}", o.totalprice))),
        )
        .child(Element::new("customerRef").child(Element::leaf("custKey", o.custkey.to_string())))
        .child(lines_element("positions", "position", &o.lines));
    Document::new(root)
}

/// The San Diego application's order message — a *different* deep XML
/// schema, optionally corrupted.
pub fn san_diego_order(o: &OrderData, inject: Option<MessageError>) -> Document {
    let mut order = Element::new("sdOrder");
    if inject != Some(MessageError::MissingField) {
        order = order.child(Element::leaf("okey", o.orderkey.to_string()));
    }
    order = order.child(Element::leaf("ckey", o.custkey.to_string()));
    order = order.child(Element::leaf("odate", o.orderdate.clone()));
    let prio = if inject == Some(MessageError::WrongVocabulary) {
        "SUPER-EXTREME".to_string()
    } else {
        o.priority.clone()
    };
    order = order.child(Element::leaf("oprio", prio));
    order = order.child(Element::leaf("ostate", o.state.clone()));
    let total = if inject == Some(MessageError::BadType) {
        "lots".to_string()
    } else {
        format!("{:.2}", o.totalprice)
    };
    order = order.child(Element::leaf("total", total));

    let mut lines = Element::new("sdLines");
    for l in &o.lines {
        lines = lines.child(
            Element::new("sdLine")
                .attr("no", l.lineno.to_string())
                .child(Element::leaf("pkey", l.prodkey.to_string()))
                .child(Element::leaf("qty", l.quantity.to_string()))
                .child(Element::leaf("xprice", format!("{:.2}", l.extendedprice)))
                .child(Element::leaf("disc", format!("{:.2}", l.discount))),
        );
    }
    let mut root = Element::new("sdMessage")
        .child(
            Element::new("sdHeader")
                .child(Element::leaf("msgKey", format!("SD-{}", o.orderkey)))
                .child(Element::leaf("created", o.orderdate.clone())),
        )
        .child(order)
        .child(lines);
    if inject == Some(MessageError::UnexpectedElement) {
        root = root.child(Element::leaf("debugDump", "0xDEADBEEF"));
    }
    Document::new(root)
}

/// The MDM Europe application's customer master-data message.
pub fn mdm_customer(c: &CustomerData) -> Document {
    let root = Element::new("mdmCustomer")
        .child(Element::new("ident").child(Element::leaf("custKey", c.custkey.to_string())))
        .child(
            Element::new("details")
                .child(Element::leaf("name", c.name.clone()))
                .child(Element::leaf("segment", c.segment.clone()))
                .child(Element::leaf("phone", c.phone.clone()))
                .child(Element::leaf("acctbal", format!("{:.2}", c.acctbal))),
        )
        .child(
            Element::new("address")
                .child(Element::leaf("street", c.address.clone()))
                .child(Element::leaf("city", c.city.clone()))
                .child(Element::leaf("nation", c.nation.clone()))
                .child(Element::leaf("region", c.region.clone())),
        );
    Document::new(root)
}

/// The Hongkong web service's push message (business-transaction-driven,
/// P08). A flatter schema than Vienna's.
pub fn hongkong_order(o: &OrderData) -> Document {
    let root = Element::new("hkOrder")
        .child(Element::leaf("hkOrderKey", o.orderkey.to_string()))
        .child(Element::leaf("hkCustKey", o.custkey.to_string()))
        .child(Element::leaf("hkDate", o.orderdate.clone()))
        .child(Element::leaf("hkPriority", o.priority.clone()))
        .child(Element::leaf("hkState", o.state.clone()))
        .child(Element::leaf("hkTotal", format!("{:.2}", o.totalprice)))
        .child(lines_element("hkLines", "hkLine", &o.lines));
    Document::new(root)
}

/// A Beijing master-data exchange document (XSD_Beijing shape; P01
/// translates this to the Seoul shape with an STX stylesheet).
pub fn beijing_master_data(customers: &[CustomerData], parts: &[PartData]) -> Document {
    let mut custs = Element::new("bjCustomers");
    for c in customers {
        custs = custs.child(
            Element::new("bjCustomer")
                .child(Element::leaf("bjKey", c.custkey.to_string()))
                .child(Element::leaf("bjName", c.name.clone()))
                .child(Element::leaf("bjCity", c.city.clone()))
                .child(Element::leaf("bjSegment", c.segment.clone()))
                .child(Element::leaf("bjPhone", c.phone.clone())),
        );
    }
    let mut prods = Element::new("bjParts");
    for p in parts {
        prods = prods.child(
            Element::new("bjPart")
                .child(Element::leaf("bjKey", p.prodkey.to_string()))
                .child(Element::leaf("bjName", p.name.clone()))
                .child(Element::leaf("bjGroup", p.group.clone()))
                .child(Element::leaf("bjPrice", format!("{:.2}", p.price))),
        );
    }
    Document::new(Element::new("bjMasterData").child(custs).child(prods))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_xmlkit::path::value;

    fn order() -> OrderData {
        OrderData {
            orderkey: 100,
            custkey: 7,
            orderdate: "2008-04-07".into(),
            priority: "1-URGENT".into(),
            state: "OPEN".into(),
            totalprice: 123.45,
            lines: vec![
                OrderLineData {
                    lineno: 1,
                    prodkey: 3,
                    quantity: 2,
                    extendedprice: 100.0,
                    discount: 0.1,
                },
                OrderLineData {
                    lineno: 2,
                    prodkey: 4,
                    quantity: 1,
                    extendedprice: 23.45,
                    discount: 0.0,
                },
            ],
        }
    }

    #[test]
    fn vienna_shape() {
        let d = vienna_order(&order());
        assert_eq!(
            value(&d.root, "viennaOrder/orderHeader/orderKey")
                .unwrap()
                .as_deref(),
            Some("100")
        );
        assert_eq!(
            value(&d.root, "viennaOrder/customerRef/custKey")
                .unwrap()
                .as_deref(),
            Some("7")
        );
        assert_eq!(d.root.first("positions").unwrap().elements().count(), 2);
    }

    #[test]
    fn san_diego_clean_vs_injected() {
        let clean = san_diego_order(&order(), None);
        assert_eq!(
            value(&clean.root, "sdMessage/sdOrder/okey")
                .unwrap()
                .as_deref(),
            Some("100")
        );
        let missing = san_diego_order(&order(), Some(MessageError::MissingField));
        assert_eq!(
            value(&missing.root, "sdMessage/sdOrder/okey").unwrap(),
            None
        );
        let bad = san_diego_order(&order(), Some(MessageError::BadType));
        assert_eq!(
            value(&bad.root, "sdMessage/sdOrder/total")
                .unwrap()
                .as_deref(),
            Some("lots")
        );
        let vocab = san_diego_order(&order(), Some(MessageError::WrongVocabulary));
        assert_eq!(
            value(&vocab.root, "sdMessage/sdOrder/oprio")
                .unwrap()
                .as_deref(),
            Some("SUPER-EXTREME")
        );
        let extra = san_diego_order(&order(), Some(MessageError::UnexpectedElement));
        assert!(extra.root.first("debugDump").is_some());
    }

    #[test]
    fn mdm_and_hongkong_and_beijing() {
        let c = CustomerData {
            custkey: 5,
            name: "acme".into(),
            address: "street 1".into(),
            city: "Wien".into(),
            nation: "AT".into(),
            region: "Europe".into(),
            segment: "AUTOMOBILE".into(),
            phone: "+43".into(),
            acctbal: 9.0,
        };
        let d = mdm_customer(&c);
        assert_eq!(
            value(&d.root, "mdmCustomer/ident/custKey")
                .unwrap()
                .as_deref(),
            Some("5")
        );
        assert_eq!(
            value(&d.root, "mdmCustomer/address/city")
                .unwrap()
                .as_deref(),
            Some("Wien")
        );

        let h = hongkong_order(&order());
        assert_eq!(
            value(&h.root, "hkOrder/hkCustKey").unwrap().as_deref(),
            Some("7")
        );

        let p = PartData {
            prodkey: 1,
            name: "bolt".into(),
            group: "g".into(),
            line: "l".into(),
            price: 1.0,
        };
        let b = beijing_master_data(&[c], &[p]);
        assert_eq!(b.root.first("bjCustomers").unwrap().elements().count(), 1);
        assert_eq!(b.root.first("bjParts").unwrap().elements().count(), 1);
    }
}
