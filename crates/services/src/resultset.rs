//! The generic "default result-set XSD" codec.
//!
//! The paper's region Asia "follows a generic approach, where all schemas
//! are expressed with default result set XSDs" — the Web services are
//! "simply data sources hidden by Web services". This module defines that
//! generic shape and converts between it and [`Relation`]s:
//!
//! ```xml
//! <resultSet source="beijing" table="orders">
//!   <row><orderkey>1</orderkey><custkey>10</custkey>…</row>
//!   …
//! </resultSet>
//! ```

use dip_relstore::prelude::*;
use dip_xmlkit::node::{Document, Element};
use dip_xmlkit::value_types::SimpleType;
use dip_xmlkit::xsd::{XsdAttr, XsdElement, XsdSchema};

/// Encode a relation as a generic result-set document.
pub fn encode(source: &str, table: &str, rel: &Relation) -> Document {
    let mut root = Element::new("resultSet")
        .attr("source", source)
        .attr("table", table);
    for row in &rel.rows {
        let mut row_el = Element::new("row");
        for (v, col) in row.iter().zip(rel.schema.columns()) {
            if v.is_null() {
                // NULL is encoded as an absent element
                continue;
            }
            row_el = row_el.child(Element::leaf(col.name.clone(), v.render()));
        }
        root = root.child(row_el);
    }
    Document::new(root)
}

/// Decode a result-set document back into a relation with the given target
/// schema: elements are matched to columns by name (case-insensitive),
/// missing elements become NULL, values are coerced to the column type.
pub fn decode(doc: &Document, schema: &SchemaRef) -> StoreResult<Relation> {
    if doc.root.name != "resultSet" {
        return Err(StoreError::Invalid(format!(
            "expected <resultSet>, got <{}>",
            doc.root.name
        )));
    }
    let mut rows = Vec::new();
    for row_el in doc.root.all("row") {
        let mut row: Row = vec![Value::Null; schema.len()];
        for field in row_el.elements() {
            if let Ok(idx) = schema.index_of(&field.name) {
                let text = field.text_content();
                row[idx] = coerce(&text, schema.column(idx).ty).ok_or_else(|| {
                    StoreError::SchemaMismatch(format!(
                        "cannot read {:?} as {} for column {}",
                        text,
                        schema.column(idx).ty,
                        schema.column(idx).name
                    ))
                })?;
            }
        }
        rows.push(row);
    }
    Ok(Relation::new(schema.clone(), rows))
}

/// Lexical-to-typed coercion used when decoding.
pub fn coerce(text: &str, ty: SqlType) -> Option<Value> {
    let t = text.trim();
    Some(match ty {
        SqlType::Int => Value::Int(t.parse().ok()?),
        SqlType::Float => Value::Float(t.parse().ok()?),
        SqlType::Bool => Value::Bool(t.parse().ok()?),
        SqlType::Str => Value::str(t),
        SqlType::Date => Value::Date(parse_date(t)?),
    })
}

/// The structural XSD for result-set documents over a given schema.
pub fn result_set_xsd(name: &str, schema: &RelSchema) -> XsdSchema {
    let fields: Vec<_> = schema
        .columns()
        .iter()
        .map(|c| {
            let ty = match c.ty {
                SqlType::Int => SimpleType::Int,
                SqlType::Float => SimpleType::Decimal,
                SqlType::Date => SimpleType::Date,
                _ => SimpleType::String,
            };
            // every field is optional: NULL encodes as absence
            XsdElement::simple(c.name.clone(), ty).optional()
        })
        .collect();
    XsdSchema::new(
        name,
        XsdElement::sequence(
            "resultSet",
            vec![XsdElement::sequence("row", fields).many()],
        )
        .with_attr(XsdAttr::required("source", SimpleType::String))
        .with_attr(XsdAttr::required("table", SimpleType::String)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> SchemaRef {
        RelSchema::of(&[
            ("orderkey", SqlType::Int),
            ("price", SqlType::Float),
            ("odate", SqlType::Date),
            ("note", SqlType::Str),
        ])
        .shared()
    }

    fn rel() -> Relation {
        Relation::new(
            schema(),
            vec![
                vec![
                    Value::Int(1),
                    Value::Float(9.5),
                    Value::Date(days_from_civil(2008, 4, 7)),
                    Value::str("a<b"),
                ],
                vec![Value::Int(2), Value::Null, Value::Null, Value::Null],
            ],
        )
    }

    #[test]
    fn roundtrip() {
        let doc = encode("beijing", "orders", &rel());
        let back = decode(&doc, &schema()).unwrap();
        assert_eq!(back, rel());
    }

    #[test]
    fn encoded_document_validates() {
        let doc = encode("beijing", "orders", &rel());
        let xsd = result_set_xsd("rs_orders", &schema());
        assert!(xsd.is_valid(&doc), "{:?}", xsd.validate(&doc));
    }

    #[test]
    fn decode_rejects_wrong_root() {
        let doc = Document::new(Element::new("nope"));
        assert!(decode(&doc, &schema()).is_err());
    }

    #[test]
    fn decode_rejects_bad_lexical_value() {
        let doc = Document::new(
            Element::new("resultSet")
                .child(Element::new("row").child(Element::leaf("orderkey", "NaNaN"))),
        );
        assert!(decode(&doc, &schema()).is_err());
    }

    #[test]
    fn unknown_fields_ignored() {
        let doc = Document::new(
            Element::new("resultSet").child(
                Element::new("row")
                    .child(Element::leaf("orderkey", "5"))
                    .child(Element::leaf("mystery", "?")),
            ),
        );
        let rel = decode(&doc, &schema()).unwrap();
        assert_eq!(rel.rows[0][0], Value::Int(5));
    }

    #[test]
    fn serialized_size_is_stable() {
        // the netsim layer charges bandwidth by serialized byte count;
        // make sure encoding is deterministic
        let a = dip_xmlkit::write_compact(&encode("s", "t", &rel()));
        let b = dip_xmlkit::write_compact(&encode("s", "t", &rel()));
        assert_eq!(a, b);
    }
}
