//! Property-based tests of the relational store's core invariants.

use dip_relstore::prelude::*;
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        (-1.0e6f64..1.0e6).prop_map(Value::Float),
        "[a-z]{0,8}".prop_map(Value::str),
        (-100_000i32..100_000).prop_map(Value::Date),
    ]
}

proptest! {
    /// total_cmp is a total order: antisymmetric and transitive over
    /// random triples, and equal values hash equally.
    #[test]
    fn value_total_order(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // antisymmetry
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        // transitivity
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
        // hash consistency with equality
        if a == b {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    /// Date conversion round-trips for all in-range days.
    #[test]
    fn date_roundtrip(days in -200_000i32..200_000) {
        let rendered = render_date(days);
        prop_assert_eq!(parse_date(&rendered), Some(days));
    }

    /// LIKE with a pattern equal to the string (no wildcards) matches
    /// exactly; '%' alone matches everything; prefix% matches prefixes.
    #[test]
    fn like_basics(s in "[a-z0-9]{0,12}", p in "[a-z0-9]{0,12}") {
        use dip_relstore::expr::like_match;
        prop_assert!(like_match(&s, "%"));
        prop_assert_eq!(like_match(&s, &s), true);
        if !p.is_empty() && s.starts_with(&p) {
            let prefix_pattern = format!("{p}%");
            prop_assert!(like_match(&s, &prefix_pattern));
        }
        // `%p%` matches exactly when the literal occurs as a substring
        let wrapped = format!("%{p}%");
        prop_assert_eq!(like_match(&s, &wrapped), s.contains(&p));
    }
}

/// A random table of (pk, group, value) rows.
fn arb_rows(max: usize) -> impl Strategy<Value = Vec<(i64, i64, f64)>> {
    prop::collection::vec((0i64..1000, 0i64..10, -100.0f64..100.0), 0..max).prop_map(|mut v| {
        // distinct primary keys
        v.sort_by_key(|(k, _, _)| *k);
        v.dedup_by_key(|(k, _, _)| *k);
        v
    })
}

fn make_db(rows: &[(i64, i64, f64)]) -> Database {
    let db = Database::new("prop");
    let schema = RelSchema::of(&[
        ("k", SqlType::Int),
        ("g", SqlType::Int),
        ("v", SqlType::Float),
    ])
    .shared();
    let t = Table::new("t", schema).with_primary_key(&["k"]).unwrap();
    t.insert(
        rows.iter()
            .map(|(k, g, v)| vec![Value::Int(*k), Value::Int(*g), Value::Float(*v)])
            .collect(),
    )
    .unwrap();
    db.create_table(t);
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The optimizer never changes query results: a filter+project+join
    /// pipeline returns the same rows optimized and unoptimized.
    #[test]
    fn optimizer_preserves_semantics(rows in arb_rows(60), threshold in -100.0f64..100.0) {
        let db = make_db(&rows);
        let plan = Plan::scan("t")
            .hash_join(Plan::scan("t"), vec![1], vec![1], JoinKind::Inner)
            .filter(Expr::col(2).gt(Expr::lit(threshold)).and(Expr::col(4).le(Expr::lit(5))))
            .project(vec![
                ProjExpr::new(Expr::col(0), "k", SqlType::Int),
                ProjExpr::new(Expr::col(5).mul(Expr::lit(2.0)), "v2", SqlType::Float),
            ]);
        let s = execute(&plan, &db, ExecMode::Streaming).unwrap();
        let v = execute(&plan, &db, ExecMode::Vectorized).unwrap();
        // same optimized plan, same emission order: row-for-row identical
        prop_assert_eq!(&s.rows, &v.rows);
        let mut a = s;
        let mut b = execute(&plan, &db, ExecMode::Oracle).unwrap();
        a.sort_by_columns(&[0, 1]);
        b.sort_by_columns(&[0, 1]);
        prop_assert_eq!(a.rows, b.rows);
    }

    /// UNION DISTINCT on the key column never yields duplicate keys and
    /// covers exactly the union of input keys.
    #[test]
    fn union_distinct_is_set_union(a in arb_rows(40), b in arb_rows(40)) {
        let db = Database::new("u");
        let schema = RelSchema::of(&[
            ("k", SqlType::Int),
            ("g", SqlType::Int),
            ("v", SqlType::Float),
        ])
        .shared();
        for (name, rows) in [("ta", &a), ("tb", &b)] {
            let t = Table::new(name, schema.clone()).with_primary_key(&["k"]).unwrap();
            t.insert(
                rows.iter()
                    .map(|(k, g, v)| vec![Value::Int(*k), Value::Int(*g), Value::Float(*v)])
                    .collect(),
            )
            .unwrap();
            db.create_table(t);
        }
        let plan = Plan::UnionDistinct {
            inputs: vec![Plan::scan("ta"), Plan::scan("tb")],
            key: Some(vec![0]),
        };
        let rel = plan.run(&db).unwrap();
        let mut keys: Vec<i64> = rel.rows.iter().map(|r| r[0].to_int().unwrap()).collect();
        keys.sort();
        let mut expected: Vec<i64> = a.iter().chain(b.iter()).map(|(k, _, _)| *k).collect();
        expected.sort();
        expected.dedup();
        prop_assert_eq!(keys, expected);
    }

    /// Aggregates are conserved: SUM over groups equals the global SUM and
    /// COUNT over groups equals the row count.
    #[test]
    fn aggregate_conservation(rows in arb_rows(60)) {
        let db = make_db(&rows);
        let grouped = Plan::scan("t")
            .aggregate(
                vec![1],
                vec![AggExpr::count_star("n"), AggExpr::new(AggFunc::Sum, Expr::col(2), "s")],
            )
            .run(&db)
            .unwrap();
        let n: i64 = grouped.rows.iter().map(|r| r[1].to_int().unwrap()).sum();
        prop_assert_eq!(n as usize, rows.len());
        let s: f64 = grouped.rows.iter().filter_map(|r| r[2].to_float()).sum();
        let expected: f64 = rows.iter().map(|(_, _, v)| v).sum();
        prop_assert!((s - expected).abs() < 1e-6 * (1.0 + expected.abs()));
    }

    /// The streaming and vectorized executors' fused scan→filter→project,
    /// index-nested-loop join and bounded top-K paths return exactly the
    /// rows of the naive materializing oracle across randomized data, join
    /// kinds and limits — `Oracle == Streaming == Vectorized` row-for-row
    /// (the trailing sort over every column pins one total order).
    #[test]
    fn all_exec_modes_agree_row_for_row(
        rows in arb_rows(60),
        dim in prop::collection::vec((0i64..12, "[a-z]{0,4}"), 0..20)
            .prop_map(|mut v| { v.sort_by_key(|(k, _)| *k); v.dedup_by_key(|(k, _)| *k); v }),
        threshold in -100.0f64..100.0,
        n in 0usize..80,
        left in any::<bool>(),
    ) {
        let db = make_db(&rows);
        let dschema = RelSchema::of(&[("k", SqlType::Int), ("w", SqlType::Str)]).shared();
        let t = Table::new("dim", dschema).with_primary_key(&["k"]).unwrap();
        t.insert(
            dim.iter()
                .map(|(k, w)| vec![Value::Int(*k), Value::str(w.as_str())])
                .collect(),
        )
        .unwrap();
        db.create_table(t);
        let kind = if left { JoinKind::Left } else { JoinKind::Inner };
        // optimized: the filter pushes into t's scan, the join becomes an
        // index-nested-loop probe of dim's primary key, and Limit(Sort)
        // becomes a bounded top-K. Sorting on every column makes the top-n
        // cutoff deterministic regardless of executor emission order.
        let plan = Plan::scan("t")
            .hash_join(Plan::scan("dim"), vec![1], vec![0], kind)
            .filter(Expr::col(2).gt(Expr::lit(threshold)))
            .sort(vec![0, 1, 2, 3, 4])
            .limit(n);
        let oracle = execute(&plan, &db, ExecMode::Oracle).unwrap();
        for mode in [ExecMode::Streaming, ExecMode::Vectorized, ExecMode::Auto] {
            let out = execute(&plan, &db, mode).unwrap();
            prop_assert_eq!(&out.rows, &oracle.rows, "mode={}", mode.label());
        }
    }

    /// delete_where + the inverse predicate partition the table.
    #[test]
    fn delete_partitions(rows in arb_rows(60), threshold in 0i64..10) {
        let db = make_db(&rows);
        let t = db.table("t").unwrap();
        let before = t.row_count();
        let deleted = t.delete_where(&Expr::col(1).lt(Expr::lit(threshold))).unwrap();
        let remaining = t.row_count();
        prop_assert_eq!(deleted + remaining, before);
        // no survivor matches the predicate
        let survivors = t
            .scan_where(&Expr::col(1).lt(Expr::lit(threshold)), None)
            .unwrap();
        prop_assert_eq!(survivors.len(), 0);
    }

    /// Upsert is idempotent and insert_ignore never changes existing rows.
    #[test]
    fn upsert_idempotent(rows in arb_rows(40)) {
        let db = make_db(&rows);
        let t = db.table("t").unwrap();
        let snapshot = {
            let mut rel = t.scan();
            rel.sort_by_columns(&[0]);
            rel.rows
        };
        let all: Vec<Row> = snapshot.clone();
        t.upsert(all.clone()).unwrap();
        t.insert_ignore_duplicates(all).unwrap();
        let mut rel = t.scan();
        rel.sort_by_columns(&[0]);
        prop_assert_eq!(rel.rows, snapshot);
    }
}

/// One randomly chosen mutation against the transactional test database.
#[derive(Debug, Clone)]
enum TxOp {
    InsertIgnore(Vec<(i64, i64, f64)>),
    Upsert(Vec<(i64, i64, f64)>),
    DeleteWhere(i64),
    UpdateWhere(i64, f64),
    Truncate,
    RefreshView,
}

fn arb_tx_op() -> impl Strategy<Value = TxOp> {
    prop_oneof![
        arb_rows(8).prop_map(TxOp::InsertIgnore),
        arb_rows(8).prop_map(TxOp::Upsert),
        (0i64..10).prop_map(TxOp::DeleteWhere),
        (0i64..1000, -100.0f64..100.0).prop_map(|(k, v)| TxOp::UpdateWhere(k, v)),
        Just(TxOp::Truncate),
        Just(TxOp::RefreshView),
    ]
}

/// Build a database with a secondary-indexed base table, seed rows, and an
/// incremental materialized view already refreshed once (change log drained).
fn make_tx_db(rows: &[(i64, i64, f64)]) -> Database {
    let db = Database::new("txprop");
    let schema = RelSchema::of(&[
        ("k", SqlType::Int),
        ("g", SqlType::Int),
        ("v", SqlType::Float),
    ])
    .shared();
    let t = Table::new("t", schema)
        .with_primary_key(&["k"])
        .unwrap()
        .with_index("by_g", &["g"], false, IndexKind::Hash)
        .unwrap()
        .with_change_capture();
    t.insert(
        rows.iter()
            .map(|(k, g, v)| vec![Value::Int(*k), Value::Int(*g), Value::Float(*v)])
            .collect(),
    )
    .unwrap();
    db.create_table(t);
    let mv_schema = RelSchema::of(&[("g", SqlType::Int), ("s", SqlType::Float)]).shared();
    db.create_table(
        Table::new("t_mv", mv_schema)
            .with_primary_key(&["g"])
            .unwrap(),
    );
    db.create_view(MatView::new(
        "t_by_g",
        "t_mv",
        Plan::scan("t").aggregate(vec![1], vec![AggExpr::new(AggFunc::Sum, Expr::col(2), "s")]),
        RefreshMode::Incremental,
    ));
    db.refresh_view("t_by_g").unwrap();
    db
}

fn full_state(db: &Database) -> String {
    db.table_names()
        .iter()
        .map(|t| db.table(t).unwrap().state_dump())
        .collect::<Vec<_>>()
        .join("\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Rolling back a random batch of mixed operations — bulk inserts,
    /// upserts, predicate deletes (including the full-wipe fast path),
    /// updates, truncates and incremental mview refreshes — restores every
    /// table, every index, and the mview storage byte-identically.
    #[test]
    fn rollback_restores_store_byte_identically(
        rows in arb_rows(30),
        ops in prop::collection::vec(arb_tx_op(), 1..10),
    ) {
        let db = make_tx_db(&rows);
        let before = full_state(&db);
        let tx = dip_relstore::tx::begin();
        let t = db.table("t").unwrap();
        for op in &ops {
            match op {
                TxOp::InsertIgnore(batch) => {
                    t.insert_ignore_duplicates(
                        batch
                            .iter()
                            .map(|(k, g, v)| vec![Value::Int(*k), Value::Int(*g), Value::Float(*v)])
                            .collect(),
                    )
                    .unwrap();
                }
                TxOp::Upsert(batch) => {
                    t.upsert(
                        batch
                            .iter()
                            .map(|(k, g, v)| vec![Value::Int(*k), Value::Int(*g), Value::Float(*v)])
                            .collect(),
                    )
                    .unwrap();
                }
                TxOp::DeleteWhere(g) => {
                    t.delete_where(&Expr::col(1).lt(Expr::lit(*g))).unwrap();
                }
                TxOp::UpdateWhere(k, v) => {
                    t.update_where(&Expr::col(0).eq(Expr::lit(*k)), &[(2, Expr::lit(*v))])
                        .unwrap();
                }
                TxOp::Truncate => t.truncate(),
                TxOp::RefreshView => {
                    // nested scope: the refresh commits into the outer tx
                    db.refresh_view("t_by_g").unwrap();
                }
            }
        }
        tx.rollback();
        prop_assert_eq!(full_state(&db), before);
        // the store stays fully usable: rolled-back keys are re-insertable
        // and the view still refreshes
        t.insert(vec![vec![Value::Int(5000), Value::Int(0), Value::Float(1.0)]]).unwrap();
        db.refresh_view("t_by_g").unwrap();
    }
}

/// Rows for the typed-column suite: every non-key column is nullable so
/// the batch executor's validity bitmaps see real NULLs, and the integer
/// column draws from the extremes so SUM hits the i64-overflow fallback.
type NullableRow = (i64, Option<i64>, Option<f64>, Option<String>);

fn arb_nullable_rows(max: usize) -> impl Strategy<Value = Vec<NullableRow>> {
    let big = prop_oneof![
        4 => (-1000i64..1000).prop_map(Some),
        1 => Just(Some(i64::MAX - 7)),
        1 => Just(Some(i64::MIN + 7)),
        2 => Just(None),
    ];
    let flt = prop_oneof![
        3 => (-100.0f64..100.0).prop_map(Some),
        1 => Just(None),
    ];
    let txt = prop_oneof![
        3 => "[a-z]{0,6}".prop_map(Some),
        1 => Just(None),
    ];
    prop::collection::vec((0i64..1000, big, flt, txt), 0..max).prop_map(|mut v| {
        v.sort_by_key(|(k, ..)| *k);
        v.dedup_by_key(|(k, ..)| *k);
        v
    })
}

fn make_nullable_db(rows: &[NullableRow]) -> Database {
    let db = Database::new("typed");
    let schema = RelSchema::of(&[
        ("k", SqlType::Int),
        ("g", SqlType::Int),
        ("v", SqlType::Float),
        ("s", SqlType::Str),
    ])
    .shared();
    let t = Table::new("t", schema).with_primary_key(&["k"]).unwrap();
    let opt = |o: &Option<i64>| o.map(Value::Int).unwrap_or(Value::Null);
    t.insert(
        rows.iter()
            .map(|(k, g, v, s)| {
                vec![
                    Value::Int(*k),
                    opt(g),
                    v.map(Value::Float).unwrap_or(Value::Null),
                    s.as_deref().map(Value::str).unwrap_or(Value::Null),
                ]
            })
            .collect(),
    )
    .unwrap();
    db.create_table(t);
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Typed column storage (I64/F64/Str vectors + NULL bitmaps) returns
    /// exactly the oracle's rows across every plan shape: fused
    /// scan→filter→project, grouped aggregation over a NULL-bearing group
    /// key (COUNT/SUM/MIN/MAX, including overflow-boundary i64 sums),
    /// distinct union, and a join on a nullable key.
    #[test]
    fn typed_columns_agree_with_oracle(
        rows in arb_nullable_rows(50),
        threshold in -100.0f64..100.0,
    ) {
        let db = make_nullable_db(&rows);
        let plans = [
            // scan → filter → project over all three typed layouts
            Plan::scan("t")
                .filter(Expr::col(2).gt(Expr::lit(threshold)))
                .project(vec![
                    ProjExpr::new(Expr::col(0), "k", SqlType::Int),
                    ProjExpr::new(Expr::col(1), "g", SqlType::Int),
                    ProjExpr::new(Expr::col(3), "s", SqlType::Str),
                    ProjExpr::new(Expr::col(2).mul(Expr::lit(2.0)), "v2", SqlType::Float),
                ])
                .sort(vec![0, 1, 2, 3]),
            // grouped aggregation: NULL group keys group together;
            // the i64 SUM crosses the checked-add overflow boundary
            Plan::scan("t")
                .aggregate(
                    vec![1],
                    vec![
                        AggExpr::count_star("n"),
                        AggExpr::new(AggFunc::Count, Expr::col(3), "ns"),
                        AggExpr::new(AggFunc::Sum, Expr::col(1), "si"),
                        AggExpr::new(AggFunc::Sum, Expr::col(2), "sf"),
                        AggExpr::new(AggFunc::Min, Expr::col(3), "lo"),
                        AggExpr::new(AggFunc::Max, Expr::col(2), "hi"),
                    ],
                )
                .sort(vec![0, 1, 2, 3, 4, 5, 6]),
            // distinct union on a nullable string key
            Plan::UnionDistinct {
                inputs: vec![Plan::scan("t"), Plan::scan("t")],
                key: Some(vec![3]),
            }
            .sort(vec![0, 1, 2, 3]),
            // self join on the nullable int column: NULL keys never join
            Plan::scan("t")
                .hash_join(Plan::scan("t"), vec![1], vec![1], JoinKind::Left)
                .sort(vec![0, 1, 2, 3, 4, 5, 6, 7]),
        ];
        for plan in &plans {
            let oracle = execute(plan, &db, ExecMode::Oracle).unwrap();
            for mode in [ExecMode::Streaming, ExecMode::Vectorized, ExecMode::Auto] {
                let out = execute(plan, &db, mode).unwrap();
                prop_assert_eq!(&out.rows, &oracle.rows, "mode={}", mode.label());
            }
        }
    }

    /// Exact integer SUM survives the typed fast path: a sum that stays in
    /// range is bit-exact Int, and one pushed past i64::MAX widens to the
    /// same compensated float in every executor.
    #[test]
    fn typed_int_sum_is_exact_and_overflow_consistent(
        base in prop::collection::vec(1i64..1_000_000, 1..40),
        overflow in any::<bool>(),
    ) {
        let db = Database::new("sum");
        let schema = RelSchema::of(&[("k", SqlType::Int), ("x", SqlType::Int)]).shared();
        let t = Table::new("t", schema).with_primary_key(&["k"]).unwrap();
        let mut rows: Vec<Vec<Value>> = base
            .iter()
            .enumerate()
            .map(|(i, &x)| vec![Value::Int(i as i64), Value::Int(x)])
            .collect();
        if overflow {
            rows.push(vec![Value::Int(-1), Value::Int(i64::MAX - 2)]);
            rows.push(vec![Value::Int(-2), Value::Int(i64::MAX - 3)]);
        }
        t.insert(rows).unwrap();
        db.create_table(t);
        let plan = Plan::scan("t")
            .aggregate(vec![], vec![AggExpr::new(AggFunc::Sum, Expr::col(1), "s")]);
        let oracle = execute(&plan, &db, ExecMode::Oracle).unwrap();
        if !overflow {
            let expect: i64 = base.iter().sum();
            prop_assert_eq!(&oracle.rows[0][0], &Value::Int(expect));
        }
        for mode in [ExecMode::Streaming, ExecMode::Vectorized, ExecMode::Auto] {
            let out = execute(&plan, &db, mode).unwrap();
            prop_assert_eq!(&out.rows, &oracle.rows, "mode={}", mode.label());
        }
    }
}
