//! Table schemas: named, typed columns plus key metadata.

use crate::error::{StoreError, StoreResult};
use crate::value::{SqlType, Value};
use std::fmt;
use std::sync::Arc;

/// One column of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub ty: SqlType,
    pub nullable: bool,
}

impl Column {
    pub fn new(name: impl Into<String>, ty: SqlType) -> Column {
        Column {
            name: name.into(),
            ty,
            nullable: true,
        }
    }

    pub fn not_null(name: impl Into<String>, ty: SqlType) -> Column {
        Column {
            name: name.into(),
            ty,
            nullable: false,
        }
    }
}

/// An ordered set of columns; shared via `Arc` between tables, relations and
/// query plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelSchema {
    columns: Vec<Column>,
}

/// Shared handle to a schema.
pub type SchemaRef = Arc<RelSchema>;

impl RelSchema {
    pub fn new(columns: Vec<Column>) -> RelSchema {
        RelSchema { columns }
    }

    /// Build a schema from `(name, type)` pairs, all nullable.
    pub fn of(cols: &[(&str, SqlType)]) -> RelSchema {
        RelSchema::new(cols.iter().map(|(n, t)| Column::new(*n, *t)).collect())
    }

    pub fn shared(self) -> SchemaRef {
        Arc::new(self)
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Case-insensitive column lookup, as SQL identifiers behave.
    pub fn index_of(&self, name: &str) -> StoreResult<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| StoreError::NoSuchColumn(name.to_string()))
    }

    /// Resolve a list of column names to positions.
    pub fn indices_of(&self, names: &[&str]) -> StoreResult<Vec<usize>> {
        names.iter().map(|n| self.index_of(n)).collect()
    }

    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Check one row against this schema: arity, nullability and type.
    /// Integer values are accepted where floats are expected (widening).
    pub fn check_row(&self, row: &[Value]) -> StoreResult<()> {
        if row.len() != self.columns.len() {
            return Err(StoreError::SchemaMismatch(format!(
                "expected {} values, got {}",
                self.columns.len(),
                row.len()
            )));
        }
        for (v, c) in row.iter().zip(&self.columns) {
            match v.sql_type() {
                None => {
                    if !c.nullable {
                        return Err(StoreError::Constraint(format!(
                            "column {} is NOT NULL",
                            c.name
                        )));
                    }
                }
                Some(t) => {
                    let ok = t == c.ty
                        || (c.ty == SqlType::Float && t == SqlType::Int)
                        || (c.ty == SqlType::Int && t == SqlType::Bool);
                    if !ok {
                        return Err(StoreError::SchemaMismatch(format!(
                            "column {} expects {}, got {} ({v})",
                            c.name, c.ty, t
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Schema produced by keeping only the given column positions.
    pub fn project(&self, idxs: &[usize]) -> RelSchema {
        RelSchema::new(idxs.iter().map(|&i| self.columns[i].clone()).collect())
    }

    /// Schema of `self` concatenated with `other` (join output).
    pub fn concat(&self, other: &RelSchema) -> RelSchema {
        let mut cols = self.columns.clone();
        cols.extend(other.columns.iter().cloned());
        RelSchema::new(cols)
    }
}

impl fmt::Display for RelSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.ty)?;
            if !c.nullable {
                write!(f, " NOT NULL")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sch() -> RelSchema {
        RelSchema::new(vec![
            Column::not_null("id", SqlType::Int),
            Column::new("name", SqlType::Str),
            Column::new("price", SqlType::Float),
        ])
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = sch();
        assert_eq!(s.index_of("ID").unwrap(), 0);
        assert_eq!(s.index_of("Name").unwrap(), 1);
        assert!(s.index_of("missing").is_err());
    }

    #[test]
    fn check_row_arity_and_types() {
        let s = sch();
        assert!(s
            .check_row(&[Value::Int(1), Value::str("a"), Value::Float(2.0)])
            .is_ok());
        // int widens to float
        assert!(s
            .check_row(&[Value::Int(1), Value::Null, Value::Int(2)])
            .is_ok());
        // NOT NULL enforced
        assert!(matches!(
            s.check_row(&[Value::Null, Value::Null, Value::Null]),
            Err(StoreError::Constraint(_))
        ));
        // wrong arity
        assert!(s.check_row(&[Value::Int(1)]).is_err());
        // wrong type
        assert!(s
            .check_row(&[Value::str("x"), Value::Null, Value::Null])
            .is_err());
    }

    #[test]
    fn project_and_concat() {
        let s = sch();
        let p = s.project(&[2, 0]);
        assert_eq!(p.names(), vec!["price", "id"]);
        let c = s.concat(&p);
        assert_eq!(c.len(), 5);
    }
}
