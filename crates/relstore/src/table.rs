//! Heap tables with slot storage, primary/secondary indexes and change
//! capture.
//!
//! A [`Table`] owns its rows in a slotted vector (`Vec<Option<Row>>`); a
//! deleted row leaves a tombstone so slot numbers — which indexes reference —
//! stay stable. Tables are internally synchronized with a `parking_lot`
//! `RwLock`, so a shared `Arc<Table>` can be used from concurrent benchmark
//! streams.
//!
//! Triggers are *stored* here but *fired* by [`crate::catalog::Database`],
//! because a trigger body usually writes other tables and therefore needs
//! the whole database handle.

use crate::error::{StoreError, StoreResult};
use crate::expr::Expr;
use crate::index::{key_of, Index, IndexKind};
use crate::row::{Relation, Row};
use crate::schema::SchemaRef;
use crate::tx::TxShared;
use crate::value::Value;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, Weak};

/// A captured mutation, consumed by incremental materialized-view refresh.
#[derive(Debug, Clone, PartialEq)]
pub enum Change {
    Insert(Row),
    Delete(Row),
}

/// One physical undo step of an open transaction (see [`crate::tx`]).
/// Records are applied in reverse order on rollback.
#[derive(Debug)]
enum UndoOp {
    /// Rows were appended contiguously at the tail.
    Appended { first_slot: usize, count: usize },
    /// A row was replaced in place (upsert hit, update).
    Replaced { slot: usize, old: Row },
    /// A row was tombstoned (per-victim delete).
    Deleted { slot: usize, old: Row },
    /// The whole slot vector was wiped (full-wipe delete or truncate);
    /// `restore_changes` carries the change log when the wipe cleared it.
    Wiped {
        slots: Vec<Option<Row>>,
        live: usize,
        restore_changes: Option<Vec<Change>>,
    },
    /// The change-capture log was drained (mview refresh).
    Drained { changes: Vec<Change> },
}

#[derive(Debug)]
struct UndoRecord {
    /// Change-log length before this op, for capture tables: rollback
    /// truncates the log back to it after undoing the data mutation.
    changes_len: Option<usize>,
    op: UndoOp,
}

#[derive(Debug, Default)]
struct TableInner {
    slots: Vec<Option<Row>>,
    live: usize,
    primary: Option<Index>,
    secondary: Vec<Index>,
    capture: bool,
    changes: Vec<Change>,
    /// Monotonic counter bumped on every mutation batch.
    generation: u64,
    /// Per-transaction undo journals, keyed by transaction id.
    undo: HashMap<u64, Vec<UndoRecord>>,
}

/// An in-memory heap table.
pub struct Table {
    pub name: String,
    pub schema: SchemaRef,
    inner: RwLock<TableInner>,
    /// Weak self-pointer, set when the table becomes shared (catalog
    /// registration or [`Table::into_shared`]); transactions use it to
    /// find the table again at rollback time. Tables that never become
    /// shared cannot participate in transactions.
    self_ref: OnceLock<Weak<Table>>,
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("name", &self.name)
            .field("rows", &self.row_count())
            .finish()
    }
}

impl Table {
    pub fn new(name: impl Into<String>, schema: SchemaRef) -> Table {
        Table {
            name: name.into(),
            schema,
            inner: RwLock::new(TableInner::default()),
            self_ref: OnceLock::new(),
        }
    }

    /// Wrap the table in an `Arc` and arm its transaction machinery (the
    /// undo journal needs a weak self-pointer so rollback can reach the
    /// table). [`crate::catalog::Database::create_table`] does this for
    /// every catalog table.
    pub fn into_shared(self) -> Arc<Table> {
        let t = Arc::new(self);
        let _ = t.self_ref.set(Arc::downgrade(&t));
        t
    }

    /// Append an undo record for the innermost active transaction, if any.
    /// Registers the table with the transaction on first touch (under the
    /// table write lock, so exactly one thread registers).
    fn journal(&self, inner: &mut TableInner, changes_len: Option<usize>, op: UndoOp) {
        let Some(tx) = crate::tx::current() else {
            return;
        };
        let Some(weak) = self.self_ref.get() else {
            return;
        };
        let rec = UndoRecord { changes_len, op };
        match inner.undo.entry(tx.id()) {
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(rec),
            std::collections::hash_map::Entry::Vacant(e) => {
                tx.register(weak.clone());
                e.insert(vec![rec]);
            }
        }
    }

    /// Whether a mutation right now would be journaled — gates the extra
    /// clones some undo records need.
    fn journaling(&self) -> bool {
        self.self_ref.get().is_some() && crate::tx::active()
    }

    /// Discard the undo journal of a committed transaction.
    pub(crate) fn tx_discard(&self, txid: u64) {
        self.inner.write().undo.remove(&txid);
    }

    /// Re-key a nested transaction's undo records onto its parent, so an
    /// outer rollback still undoes the inner (committed) work.
    pub(crate) fn tx_merge(&self, child: u64, parent: &Arc<TxShared>) {
        let mut inner = self.inner.write();
        let Some(mut recs) = inner.undo.remove(&child) else {
            return;
        };
        match inner.undo.entry(parent.id()) {
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().append(&mut recs),
            std::collections::hash_map::Entry::Vacant(e) => {
                if let Some(weak) = self.self_ref.get() {
                    parent.register(weak.clone());
                }
                e.insert(recs);
            }
        }
    }

    /// Apply a transaction's undo journal in reverse, restoring the
    /// pre-transaction state; returns the number of records applied. The
    /// generation still advances — rolled-back state must never satisfy a
    /// generation-keyed cache.
    pub(crate) fn tx_rollback(&self, txid: u64) -> u64 {
        let mut inner = self.inner.write();
        let Some(records) = inner.undo.remove(&txid) else {
            return 0;
        };
        let n = records.len() as u64;
        for rec in records.into_iter().rev() {
            apply_undo(&mut inner, rec);
        }
        inner.generation += 1;
        n
    }

    /// Number of open transaction journals on this table (tests).
    pub fn undo_footprint(&self) -> usize {
        self.inner.read().undo.len()
    }

    /// Replace the pending change-capture log wholesale — recovery-only:
    /// a checkpoint restore re-seeds the log a crashed run had pending.
    pub fn seed_changes(&self, changes: Vec<Change>) {
        self.inner.write().changes = changes;
    }

    /// Snapshot the pending change-capture log without draining it
    /// (checkpointing needs to persist undelivered deltas).
    pub fn peek_changes(&self) -> Vec<Change> {
        self.inner.read().changes.clone()
    }

    /// Render the table's full physical state — slots (tombstones
    /// included), live count, every index's postings, and the change log —
    /// for byte-identity assertions in rollback tests. The generation
    /// counter is deliberately excluded: it advances on rollback.
    pub fn state_dump(&self) -> String {
        use std::fmt::Write;
        let inner = self.inner.read();
        let mut out = String::new();
        let _ = writeln!(out, "table {} live={}", self.name, inner.live);
        for (slot, row) in inner.slots.iter().enumerate() {
            let _ = writeln!(out, "  slot {slot}: {row:?}");
        }
        for ix in inner.primary.iter().chain(inner.secondary.iter()) {
            let _ = writeln!(out, "  index {}:", ix.name);
            for (key, slots) in ix.entries() {
                let _ = writeln!(out, "    {key:?} -> {slots:?}");
            }
        }
        let _ = writeln!(out, "  changes: {:?}", inner.changes);
        out
    }

    /// Declare the primary key over the named columns (hash-unique).
    pub fn with_primary_key(self, cols: &[&str]) -> StoreResult<Table> {
        let idxs = self.schema.indices_of(cols)?;
        {
            let mut inner = self.inner.write();
            inner.primary = Some(Index::new(
                format!("{}_pk", self.name),
                idxs,
                true,
                IndexKind::Hash,
            ));
        }
        Ok(self)
    }

    /// Add a secondary index.
    pub fn with_index(
        self,
        name: &str,
        cols: &[&str],
        unique: bool,
        kind: IndexKind,
    ) -> StoreResult<Table> {
        let idxs = self.schema.indices_of(cols)?;
        {
            let mut inner = self.inner.write();
            inner.secondary.push(Index::new(name, idxs, unique, kind));
        }
        Ok(self)
    }

    /// Enable change capture (for incremental MV refresh).
    pub fn with_change_capture(self) -> Table {
        self.inner.write().capture = true;
        self
    }

    /// Enable change capture on an already-shared table — the runtime
    /// counterpart of [`Table::with_change_capture`], used by engines that
    /// attach a change-data consumer to tables they did not create (e.g.
    /// incremental view maintenance over a remote system's base tables).
    /// Idempotent; rows inserted before enablement are not back-captured.
    pub fn enable_change_capture(&self) {
        self.inner.write().capture = true;
    }

    pub fn row_count(&self) -> usize {
        self.inner.read().live
    }

    pub fn generation(&self) -> u64 {
        self.inner.read().generation
    }

    /// Number of distinct keys of the primary index, if any — a planner
    /// statistic.
    pub fn pk_cardinality(&self) -> Option<usize> {
        self.inner
            .read()
            .primary
            .as_ref()
            .map(|p| p.distinct_keys())
    }

    /// Column positions of the primary key, if declared.
    pub fn primary_key_columns(&self) -> Option<Vec<usize>> {
        self.inner
            .read()
            .primary
            .as_ref()
            .map(|p| p.columns.clone())
    }

    /// Insert a batch of rows. All rows are validated and checked against
    /// unique indexes *before* any row is applied, so a failed batch leaves
    /// the table unchanged (statement-level atomicity).
    pub fn insert(&self, rows: Vec<Row>) -> StoreResult<usize> {
        if rows.is_empty() {
            return Ok(0);
        }
        for r in &rows {
            self.schema.check_row(r)?;
        }
        let mut inner = self.inner.write();
        // Uniqueness pre-check, including duplicates inside the batch
        // itself. Each key tuple is computed once: the existing index and
        // the in-batch set are both probed by reference, and the key moves
        // into the set only after both probes clear.
        if let Some(pk) = &inner.primary {
            let mut batch_keys = std::collections::HashSet::new();
            for r in &rows {
                let key = key_of(r, &pk.columns);
                if crate::index::key_has_null(&key) {
                    return Err(StoreError::Constraint(format!(
                        "NULL in primary key of {}",
                        self.name
                    )));
                }
                if pk.contains_key(&key) || batch_keys.contains(&key) {
                    return Err(StoreError::DuplicateKey {
                        table: self.name.clone(),
                        key: format!("{key:?}"),
                    });
                }
                batch_keys.insert(key);
            }
        }
        for ix in &inner.secondary {
            if ix.unique {
                let mut batch_keys = std::collections::HashSet::new();
                for r in &rows {
                    let key = key_of(r, &ix.columns);
                    if crate::index::key_has_null(&key) {
                        continue;
                    }
                    if ix.contains_key(&key) || batch_keys.contains(&key) {
                        return Err(StoreError::DuplicateKey {
                            table: self.name.clone(),
                            key: ix.name.clone(),
                        });
                    }
                    batch_keys.insert(key);
                }
            }
        }
        let n = rows.len();
        let changes_len = inner.capture.then(|| inner.changes.len());
        let first_slot = inner.slots.len();
        self.journal(
            &mut inner,
            changes_len,
            UndoOp::Appended {
                first_slot,
                count: n,
            },
        );
        for r in rows {
            let slot = inner.slots.len();
            if let Some(pk) = &mut inner.primary {
                pk.insert(&r, slot);
            }
            for ix in &mut inner.secondary {
                ix.insert(&r, slot);
            }
            if inner.capture {
                inner.changes.push(Change::Insert(r.clone()));
            }
            inner.slots.push(Some(r));
            inner.live += 1;
        }
        inner.generation += 1;
        crate::alloc::count_rows_inserted(n as u64);
        Ok(n)
    }

    /// Insert rows, silently skipping those whose primary key already
    /// exists — the "merge" flavour used by replication-style processes.
    pub fn insert_ignore_duplicates(&self, rows: Vec<Row>) -> StoreResult<usize> {
        let mut inner = self.inner.write();
        // This path validates per row *inside* the loop, so it can error
        // after appending a prefix of the batch — journal whatever actually
        // landed (appends are contiguous: skipped duplicates append nothing)
        // so an enclosing transaction can undo the partial write.
        let first_slot = inner.slots.len();
        let changes_len = inner.capture.then(|| inner.changes.len());
        let result = Self::insert_ignore_inner(&self.schema, &mut inner, rows);
        let appended = inner.slots.len() - first_slot;
        if appended > 0 {
            self.journal(
                &mut inner,
                changes_len,
                UndoOp::Appended {
                    first_slot,
                    count: appended,
                },
            );
            inner.generation += 1;
        }
        crate::alloc::count_rows_inserted(appended as u64);
        result
    }

    fn insert_ignore_inner(
        schema: &SchemaRef,
        inner: &mut TableInner,
        rows: Vec<Row>,
    ) -> StoreResult<usize> {
        let mut inserted = 0;
        for r in rows {
            schema.check_row(&r)?;
            // Extract the primary key once; the uniqueness probe and the
            // index registration below share the tuple.
            let pk_key = inner
                .primary
                .as_ref()
                .map(|pk| key_of(&r, &pk.columns))
                .filter(|k| !crate::index::key_has_null(k));
            if let (Some(pk), Some(key)) = (&inner.primary, &pk_key) {
                if pk.unique && pk.contains_key(key) {
                    continue;
                }
            }
            let slot = inner.slots.len();
            if let Some(pk) = &mut inner.primary {
                if let Some(key) = pk_key {
                    pk.insert_key(key, slot);
                }
            }
            for ix in &mut inner.secondary {
                ix.insert(&r, slot);
            }
            if inner.capture {
                inner.changes.push(Change::Insert(r.clone()));
            }
            inner.slots.push(Some(r));
            inner.live += 1;
            inserted += 1;
        }
        Ok(inserted)
    }

    /// Insert-or-replace by primary key (upsert). Requires a primary key.
    pub fn upsert(&self, rows: Vec<Row>) -> StoreResult<usize> {
        let mut inner = self.inner.write();
        if inner.primary.is_none() {
            return Err(StoreError::Invalid(format!(
                "upsert into {} requires a primary key",
                self.name
            )));
        }
        let journaling = self.journaling();
        let mut n = 0;
        for r in rows {
            self.schema.check_row(&r)?;
            let pk_cols = inner.primary.as_ref().unwrap().columns.clone();
            let key = key_of(&r, &pk_cols);
            let existing = inner.primary.as_ref().unwrap().lookup(&key);
            let changes_len = inner.capture.then(|| inner.changes.len());
            if let Some(&slot) = existing.first() {
                let old = inner.slots[slot].take().expect("live slot");
                if let Some(pk) = &mut inner.primary {
                    pk.remove(&old, slot);
                }
                for ix in &mut inner.secondary {
                    ix.remove(&old, slot);
                }
                if let Some(pk) = &mut inner.primary {
                    pk.insert(&r, slot);
                }
                for ix in &mut inner.secondary {
                    ix.insert(&r, slot);
                }
                if inner.capture {
                    inner.changes.push(Change::Delete(old.clone()));
                    inner.changes.push(Change::Insert(r.clone()));
                }
                inner.slots[slot] = Some(r);
                if journaling {
                    self.journal(&mut inner, changes_len, UndoOp::Replaced { slot, old });
                }
            } else {
                let slot = inner.slots.len();
                if let Some(pk) = &mut inner.primary {
                    pk.insert(&r, slot);
                }
                for ix in &mut inner.secondary {
                    ix.insert(&r, slot);
                }
                if inner.capture {
                    inner.changes.push(Change::Insert(r.clone()));
                }
                inner.slots.push(Some(r));
                inner.live += 1;
                if journaling {
                    self.journal(
                        &mut inner,
                        changes_len,
                        UndoOp::Appended {
                            first_slot: slot,
                            count: 1,
                        },
                    );
                }
            }
            n += 1;
        }
        inner.generation += 1;
        Ok(n)
    }

    /// Delete all rows matching `pred`; returns the number deleted.
    pub fn delete_where(&self, pred: &Expr) -> StoreResult<usize> {
        let mut inner = self.inner.write();
        let mut victims = Vec::new();
        for (slot, r) in inner.slots.iter().enumerate() {
            if let Some(row) = r {
                if pred.matches(row)? {
                    victims.push(slot);
                }
            }
        }
        let n = victims.len();
        if n == 0 {
            return Ok(0);
        }
        let journaling = self.journaling();
        if n == inner.live {
            // Full wipe (e.g. staging flush with a `true` predicate): clear
            // indexes wholesale instead of removing every key one by one.
            // All slots are gone afterwards, so no index entry can dangle.
            let changes_len = inner.capture.then(|| inner.changes.len());
            let slots = std::mem::take(&mut inner.slots);
            if inner.capture {
                for row in slots.iter().flatten() {
                    inner.changes.push(Change::Delete(row.clone()));
                }
            }
            if let Some(pk) = &mut inner.primary {
                pk.clear();
            }
            for ix in &mut inner.secondary {
                ix.clear();
            }
            let live = inner.live;
            inner.live = 0;
            inner.generation += 1;
            if journaling {
                self.journal(
                    &mut inner,
                    changes_len,
                    UndoOp::Wiped {
                        slots,
                        live,
                        restore_changes: None,
                    },
                );
            }
            return Ok(n);
        }
        for slot in &victims {
            let changes_len = inner.capture.then(|| inner.changes.len());
            let old = inner.slots[*slot].take().expect("live slot");
            if let Some(pk) = &mut inner.primary {
                pk.remove(&old, *slot);
            }
            for ix in &mut inner.secondary {
                ix.remove(&old, *slot);
            }
            if inner.capture {
                inner.changes.push(Change::Delete(old.clone()));
            }
            inner.live -= 1;
            if journaling {
                self.journal(
                    &mut inner,
                    changes_len,
                    UndoOp::Deleted { slot: *slot, old },
                );
            }
        }
        inner.generation += 1;
        Ok(n)
    }

    /// Update matching rows: each assignment is `(column position, expr
    /// evaluated over the old row)`. Returns the number updated.
    pub fn update_where(&self, pred: &Expr, assignments: &[(usize, Expr)]) -> StoreResult<usize> {
        let mut inner = self.inner.write();
        let mut updates: Vec<(usize, Row)> = Vec::new();
        for (slot, r) in inner.slots.iter().enumerate() {
            if let Some(row) = r {
                if pred.matches(row)? {
                    let mut new = row.clone();
                    for (col, e) in assignments {
                        new[*col] = e.eval(row)?;
                    }
                    self.schema.check_row(&new)?;
                    updates.push((slot, new));
                }
            }
        }
        let n = updates.len();
        let journaling = self.journaling();
        for (slot, new) in updates {
            let changes_len = inner.capture.then(|| inner.changes.len());
            let old = inner.slots[slot].take().expect("live slot");
            if let Some(pk) = &mut inner.primary {
                pk.remove(&old, slot);
                pk.insert(&new, slot);
            }
            for ix in &mut inner.secondary {
                ix.remove(&old, slot);
                ix.insert(&new, slot);
            }
            if inner.capture {
                inner.changes.push(Change::Delete(old.clone()));
                inner.changes.push(Change::Insert(new.clone()));
            }
            inner.slots[slot] = Some(new);
            if journaling {
                self.journal(&mut inner, changes_len, UndoOp::Replaced { slot, old });
            }
        }
        if n > 0 {
            inner.generation += 1;
        }
        Ok(n)
    }

    /// Remove all rows (and reset indexes and the change log).
    pub fn truncate(&self) {
        let mut inner = self.inner.write();
        let slots = std::mem::take(&mut inner.slots);
        let changes = std::mem::take(&mut inner.changes);
        let live = inner.live;
        inner.live = 0;
        if let Some(pk) = &mut inner.primary {
            pk.clear();
        }
        for ix in &mut inner.secondary {
            ix.clear();
        }
        inner.generation += 1;
        if self.journaling() {
            self.journal(
                &mut inner,
                None,
                UndoOp::Wiped {
                    slots,
                    live,
                    restore_changes: Some(changes),
                },
            );
        }
    }

    /// Materialize the whole table.
    pub fn scan(&self) -> Relation {
        let inner = self.inner.read();
        let rows: Vec<Row> = inner.slots.iter().filter_map(|s| s.clone()).collect();
        crate::alloc::count_rows_materialized(rows.len() as u64);
        Relation::new(self.schema.clone(), rows)
    }

    /// Materialize rows matching `pred`, optionally projecting columns.
    /// Uses the primary key or a secondary index when `pred` is a simple
    /// equality on indexed columns (`col = literal`).
    pub fn scan_where(&self, pred: &Expr, projection: Option<&[usize]>) -> StoreResult<Relation> {
        let mut rows = Vec::new();
        self.stream_rows(Some(pred), &mut |row| {
            rows.push(match projection {
                Some(p) => p.iter().map(|&i| row[i].clone()).collect(),
                None => row.to_vec(),
            });
            Ok(true)
        })?;
        let schema = match projection {
            Some(p) => self.schema.project(p).shared(),
            None => self.schema.clone(),
        };
        Ok(Relation::new(schema, rows))
    }

    /// Stream live rows matching `pred` (all rows when `None`) to `f`
    /// without materializing anything; `f` returning `false` stops the
    /// scan. Uses the same index probes as [`Table::scan_where`]. Returns
    /// `Ok(false)` iff the scan was stopped early.
    pub fn stream_rows(
        &self,
        pred: Option<&Expr>,
        f: &mut dyn FnMut(&[Value]) -> StoreResult<bool>,
    ) -> StoreResult<bool> {
        let inner = self.inner.read();
        let candidate_slots: Option<Vec<usize>> = pred.and_then(|p| index_probe(&inner, p));
        match candidate_slots {
            Some(slots) => {
                let p = pred.expect("probe implies predicate");
                for s in slots {
                    if let Some(Some(row)) = inner.slots.get(s) {
                        if p.matches(row)? && !f(row)? {
                            return Ok(false);
                        }
                    }
                }
            }
            None => {
                for row in inner.slots.iter().flatten() {
                    let keep = match pred {
                        Some(p) => p.matches(row)?,
                        None => true,
                    };
                    if keep && !f(row)? {
                        return Ok(false);
                    }
                }
            }
        }
        Ok(true)
    }

    /// Whether the primary key or a secondary index covers exactly the
    /// given column set (in any order) — the planner's test for eligibility
    /// of an index-nested-loop join.
    pub fn covering_index(&self, cols: &[usize]) -> bool {
        let inner = self.inner.read();
        inner
            .primary
            .iter()
            .chain(inner.secondary.iter())
            .any(|ix| covers(&ix.columns, cols))
    }

    /// Open an index-probe session over exactly the given key columns.
    /// The session holds the table read lock, so repeated lookups (one per
    /// probe-side row of an index join) pay no per-lookup locking.
    pub fn probe_on(&self, cols: &[usize]) -> Option<TableProbe<'_>> {
        let inner = self.inner.read();
        let find = |ix: &Index| -> Option<Vec<usize>> {
            if !covers(&ix.columns, cols) {
                return None;
            }
            // perm[i] = where index column i sits in the caller's key tuple
            ix.columns
                .iter()
                .map(|c| cols.iter().position(|k| k == c))
                .collect()
        };
        let (which, perm) = {
            let mut found = None;
            if let Some(pk) = &inner.primary {
                if let Some(perm) = find(pk) {
                    found = Some((ProbeIndex::Primary, perm));
                }
            }
            if found.is_none() {
                for (i, ix) in inner.secondary.iter().enumerate() {
                    if let Some(perm) = find(ix) {
                        found = Some((ProbeIndex::Secondary(i), perm));
                        break;
                    }
                }
            }
            found?
        };
        // identity permutation → probe with the caller's key untouched
        let perm = (!perm.iter().enumerate().all(|(i, &p)| i == p)).then_some(perm);
        Some(TableProbe {
            inner,
            which,
            perm,
            scratch: std::cell::RefCell::new(Vec::new()),
        })
    }

    /// Point lookup by primary key.
    pub fn get_by_pk(&self, key: &[Value]) -> Option<Row> {
        let inner = self.inner.read();
        let pk = inner.primary.as_ref()?;
        let slot = *pk.lookup_ref(key).first()?;
        inner.slots.get(slot)?.clone()
    }

    /// Visit every live row without materializing the table.
    pub fn for_each<E>(&self, mut f: impl FnMut(&Row) -> Result<(), E>) -> Result<(), E> {
        let inner = self.inner.read();
        for r in inner.slots.iter().flatten() {
            f(r)?;
        }
        Ok(())
    }

    /// Drain captured changes since the last drain.
    pub fn drain_changes(&self) -> Vec<Change> {
        let mut inner = self.inner.write();
        let drained = std::mem::take(&mut inner.changes);
        if !drained.is_empty() && self.journaling() {
            self.journal(
                &mut inner,
                None,
                UndoOp::Drained {
                    changes: drained.clone(),
                },
            );
        }
        drained
    }

    /// Whether change capture is enabled.
    pub fn captures_changes(&self) -> bool {
        self.inner.read().capture
    }
}

/// Undo one journal record (see [`UndoOp`] for the forward ops).
fn apply_undo(inner: &mut TableInner, rec: UndoRecord) {
    match rec.op {
        UndoOp::Appended { first_slot, count } => {
            for slot in first_slot..first_slot + count {
                if let Some(row) = inner.slots[slot].take() {
                    if let Some(pk) = &mut inner.primary {
                        pk.remove(&row, slot);
                    }
                    for ix in &mut inner.secondary {
                        ix.remove(&row, slot);
                    }
                    inner.live -= 1;
                }
            }
            // restore the exact slot-vector length when nothing was
            // appended after us; otherwise the tombstones must stay
            if inner.slots.len() == first_slot + count {
                inner.slots.truncate(first_slot);
            }
        }
        UndoOp::Replaced { slot, old } => {
            if let Some(new) = inner.slots[slot].take() {
                if let Some(pk) = &mut inner.primary {
                    pk.remove(&new, slot);
                }
                for ix in &mut inner.secondary {
                    ix.remove(&new, slot);
                }
            }
            if let Some(pk) = &mut inner.primary {
                pk.insert(&old, slot);
            }
            for ix in &mut inner.secondary {
                ix.insert(&old, slot);
            }
            inner.slots[slot] = Some(old);
        }
        UndoOp::Deleted { slot, old } => {
            if let Some(pk) = &mut inner.primary {
                pk.insert(&old, slot);
            }
            for ix in &mut inner.secondary {
                ix.insert(&old, slot);
            }
            inner.slots[slot] = Some(old);
            inner.live += 1;
        }
        UndoOp::Wiped {
            slots,
            live,
            restore_changes,
        } => {
            inner.slots = slots;
            inner.live = live;
            let TableInner {
                ref slots,
                ref mut primary,
                ref mut secondary,
                ..
            } = *inner;
            if let Some(pk) = primary.as_mut() {
                pk.clear();
            }
            for ix in secondary.iter_mut() {
                ix.clear();
            }
            for (slot, row) in slots.iter().enumerate() {
                if let Some(row) = row {
                    if let Some(pk) = primary.as_mut() {
                        pk.insert(row, slot);
                    }
                    for ix in secondary.iter_mut() {
                        ix.insert(row, slot);
                    }
                }
            }
            if let Some(c) = restore_changes {
                inner.changes = c;
            }
        }
        UndoOp::Drained { changes } => {
            inner.changes = changes;
        }
    }
    if let Some(len) = rec.changes_len {
        inner.changes.truncate(len);
    }
}

/// True if index columns are exactly the queried columns, in any order.
fn covers(index_cols: &[usize], cols: &[usize]) -> bool {
    index_cols.len() == cols.len() && index_cols.iter().all(|c| cols.contains(c))
}

/// Which index a [`TableProbe`] session resolved to.
enum ProbeIndex {
    Primary,
    Secondary(usize),
}

/// An open index-probe session (see [`Table::probe_on`]). Holds the table
/// read lock for its lifetime; do not probe a table that an enclosing
/// operation is writing.
pub struct TableProbe<'a> {
    inner: parking_lot::RwLockReadGuard<'a, TableInner>,
    which: ProbeIndex,
    /// Reorders the caller's key tuple into index column order; `None`
    /// when the orders already agree (the common case), so probes borrow
    /// the caller's key directly.
    perm: Option<Vec<usize>>,
    /// Reused key buffer for permuted probes — one allocation per probe
    /// session instead of one per probe-side row.
    scratch: std::cell::RefCell<Vec<Value>>,
}

impl TableProbe<'_> {
    /// Visit every live row whose indexed key equals `key` (given in the
    /// column order passed to [`Table::probe_on`]); `f` returning `false`
    /// stops the iteration. Returns `Ok(false)` iff stopped early.
    pub fn lookup_each(
        &self,
        key: &[Value],
        f: &mut dyn FnMut(&[Value]) -> StoreResult<bool>,
    ) -> StoreResult<bool> {
        let ix = match self.which {
            ProbeIndex::Primary => self.inner.primary.as_ref().expect("probe index"),
            ProbeIndex::Secondary(i) => &self.inner.secondary[i],
        };
        let mut scratch;
        let ordered: &[Value] = match &self.perm {
            None => key,
            Some(perm) => {
                scratch = self.scratch.borrow_mut();
                scratch.clear();
                scratch.extend(perm.iter().map(|&i| key[i].clone()));
                scratch.as_slice()
            }
        };
        for &slot in ix.lookup_ref(ordered) {
            if let Some(Some(row)) = self.inner.slots.get(slot) {
                if !f(row)? {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }
}

/// If `pred` contains a conjunct `col = literal` covering an index prefix,
/// return the candidate slots from that index; failing that, use a
/// single-column B-tree index for a `col >=/<=/>/< literal` range conjunct.
fn index_probe(inner: &TableInner, pred: &Expr) -> Option<Vec<usize>> {
    let mut eqs: Vec<(usize, Value)> = Vec::new();
    let mut ranges: Vec<(usize, Bound)> = Vec::new();
    collect_conjuncts(pred, &mut eqs, &mut ranges);
    let try_index = |ix: &Index| -> Option<Vec<usize>> {
        let key: Option<Vec<Value>> = ix
            .columns
            .iter()
            .map(|c| eqs.iter().find(|(col, _)| col == c).map(|(_, v)| v.clone()))
            .collect();
        key.map(|k| ix.lookup(&k))
    };
    if !eqs.is_empty() {
        if let Some(pk) = &inner.primary {
            if let Some(slots) = try_index(pk) {
                return Some(slots);
            }
        }
        for ix in &inner.secondary {
            if let Some(slots) = try_index(ix) {
                return Some(slots);
            }
        }
    }
    // range probe: only B-tree indexes give ordered access
    for ix in &inner.secondary {
        if ix.kind() != IndexKind::BTree || ix.columns.len() != 1 {
            continue;
        }
        let col = ix.columns[0];
        let mut lo: Option<Value> = None;
        let mut hi: Option<Value> = None;
        for (c, b) in &ranges {
            if *c != col {
                continue;
            }
            match b {
                Bound::Lower(v) => {
                    if lo.as_ref().is_none_or(|cur| v > cur) {
                        lo = Some(v.clone());
                    }
                }
                Bound::Upper(v) => {
                    if hi.as_ref().is_none_or(|cur| v < cur) {
                        hi = Some(v.clone());
                    }
                }
            }
        }
        if lo.is_some() || hi.is_some() {
            let lo = lo.unwrap_or(Value::Null); // Null sorts first: open lower bound
            let hi = hi.unwrap_or_else(max_sentinel);
            // the residual predicate re-checks strictness; the index only
            // needs to be a superset
            return Some(ix.range(&[lo], &[hi]));
        }
    }
    None
}

/// A one-sided range bound (inclusive superset — strict comparisons are
/// re-checked by the residual predicate).
enum Bound {
    Lower(Value),
    Upper(Value),
}

/// A value above every ordinary value in the total order (dates rank last).
fn max_sentinel() -> Value {
    Value::Date(i32::MAX)
}

/// Collect `col = literal` and `col </<=/>/>= literal` conjuncts from an
/// AND tree.
fn collect_conjuncts(e: &Expr, eqs: &mut Vec<(usize, Value)>, ranges: &mut Vec<(usize, Bound)>) {
    use crate::expr::CmpOp;
    match e {
        Expr::And(a, b) => {
            collect_conjuncts(a, eqs, ranges);
            collect_conjuncts(b, eqs, ranges);
        }
        Expr::Cmp(op, a, b) => {
            let (col, v, op) = match (a.as_ref(), b.as_ref()) {
                (Expr::Col(c), Expr::Lit(v)) => (*c, v.clone(), *op),
                // literal on the left: mirror the comparison
                (Expr::Lit(v), Expr::Col(c)) => {
                    let mirrored = match op {
                        CmpOp::Lt => CmpOp::Gt,
                        CmpOp::Le => CmpOp::Ge,
                        CmpOp::Gt => CmpOp::Lt,
                        CmpOp::Ge => CmpOp::Le,
                        other => *other,
                    };
                    (*c, v.clone(), mirrored)
                }
                _ => return,
            };
            match op {
                CmpOp::Eq => eqs.push((col, v)),
                CmpOp::Ge | CmpOp::Gt => ranges.push((col, Bound::Lower(v))),
                CmpOp::Le | CmpOp::Lt => ranges.push((col, Bound::Upper(v))),
                CmpOp::Ne => {}
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, RelSchema};
    use crate::value::SqlType;

    fn customers() -> Table {
        let schema = RelSchema::new(vec![
            Column::not_null("custkey", SqlType::Int),
            Column::new("name", SqlType::Str),
            Column::new("city", SqlType::Str),
        ])
        .shared();
        Table::new("customer", schema)
            .with_primary_key(&["custkey"])
            .unwrap()
            .with_index("by_city", &["city"], false, IndexKind::Hash)
            .unwrap()
    }

    fn row(k: i64, n: &str, c: &str) -> Row {
        vec![Value::Int(k), Value::str(n), Value::str(c)]
    }

    #[test]
    fn insert_and_pk_conflict() {
        let t = customers();
        assert_eq!(
            t.insert(vec![row(1, "a", "Berlin"), row(2, "b", "Paris")])
                .unwrap(),
            2
        );
        let err = t.insert(vec![row(2, "dup", "Paris")]).unwrap_err();
        assert!(matches!(err, StoreError::DuplicateKey { .. }));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn failed_batch_is_atomic() {
        let t = customers();
        t.insert(vec![row(1, "a", "Berlin")]).unwrap();
        // second row of this batch conflicts; first row must not be applied
        let err = t.insert(vec![row(5, "x", "Rome"), row(1, "dup", "Berlin")]);
        assert!(err.is_err());
        assert_eq!(t.row_count(), 1);
        assert!(t.get_by_pk(&[Value::Int(5)]).is_none());
    }

    #[test]
    fn batch_internal_duplicates_rejected() {
        let t = customers();
        assert!(t.insert(vec![row(7, "a", "x"), row(7, "b", "y")]).is_err());
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn insert_ignore_duplicates_merges() {
        let t = customers();
        t.insert(vec![row(1, "a", "Berlin")]).unwrap();
        let n = t
            .insert_ignore_duplicates(vec![row(1, "dup", "x"), row(2, "b", "y")])
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.get_by_pk(&[Value::Int(1)]).unwrap()[1], Value::str("a"));
    }

    #[test]
    fn upsert_replaces() {
        let t = customers();
        t.insert(vec![row(1, "a", "Berlin")]).unwrap();
        t.upsert(vec![row(1, "a2", "Paris"), row(2, "b", "Rome")])
            .unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.get_by_pk(&[Value::Int(1)]).unwrap()[1], Value::str("a2"));
        // secondary index reflects the move Berlin -> Paris
        let rel = t
            .scan_where(&Expr::col(2).eq(Expr::lit("Berlin")), None)
            .unwrap();
        assert_eq!(rel.len(), 0);
    }

    #[test]
    fn delete_and_update() {
        let t = customers();
        t.insert(
            (1..=10)
                .map(|i| row(i, "n", if i % 2 == 0 { "even" } else { "odd" }))
                .collect(),
        )
        .unwrap();
        let n = t.delete_where(&Expr::col(2).eq(Expr::lit("even"))).unwrap();
        assert_eq!(n, 5);
        assert_eq!(t.row_count(), 5);
        let n = t
            .update_where(&Expr::col(0).le(Expr::lit(5)), &[(1, Expr::lit("renamed"))])
            .unwrap();
        assert_eq!(n, 3); // keys 1,3,5 remain and are <= 5
        assert_eq!(
            t.get_by_pk(&[Value::Int(3)]).unwrap()[1],
            Value::str("renamed")
        );
    }

    #[test]
    fn indexed_scan_where() {
        let t = customers();
        t.insert(
            (0..100)
                .map(|i| row(i, "n", if i < 50 { "Berlin" } else { "Paris" }))
                .collect(),
        )
        .unwrap();
        let rel = t
            .scan_where(&Expr::col(2).eq(Expr::lit("Berlin")), Some(&[0]))
            .unwrap();
        assert_eq!(rel.len(), 50);
        assert_eq!(rel.schema.names(), vec!["custkey"]);
        // pk probe
        let rel = t.scan_where(&Expr::col(0).eq(Expr::lit(42)), None).unwrap();
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn btree_range_probe_matches_full_scan() {
        let schema = RelSchema::new(vec![
            Column::not_null("custkey", SqlType::Int),
            Column::new("bal", SqlType::Float),
        ])
        .shared();
        let t = Table::new("c", schema)
            .with_primary_key(&["custkey"])
            .unwrap()
            .with_index("by_bal", &["bal"], false, IndexKind::BTree)
            .unwrap();
        t.insert(
            (0..200)
                .map(|i| vec![Value::Int(i), Value::Float((i % 37) as f64)])
                .collect(),
        )
        .unwrap();
        for pred in [
            Expr::col(1)
                .ge(Expr::lit(10.0))
                .and(Expr::col(1).lt(Expr::lit(20.0))),
            Expr::col(1).gt(Expr::lit(30.0)),
            Expr::lit(5.0).gt(Expr::col(1)), // literal on the left
        ] {
            let probed = t.scan_where(&pred, None).unwrap();
            // reference: evaluate the predicate over a full scan
            let mut expected = 0;
            t.for_each(|r| {
                if pred.matches(r).unwrap() {
                    expected += 1;
                }
                Ok::<(), StoreError>(())
            })
            .unwrap();
            assert_eq!(probed.len(), expected, "{pred:?}");
        }
    }

    #[test]
    fn change_capture() {
        let t = customers().with_change_capture();
        t.insert(vec![row(1, "a", "x")]).unwrap();
        t.delete_where(&Expr::col(0).eq(Expr::lit(1))).unwrap();
        let ch = t.drain_changes();
        assert_eq!(ch.len(), 2);
        assert!(matches!(ch[0], Change::Insert(_)));
        assert!(matches!(ch[1], Change::Delete(_)));
        assert!(t.drain_changes().is_empty());
    }

    #[test]
    fn truncate_resets() {
        let t = customers();
        t.insert(vec![row(1, "a", "x")]).unwrap();
        t.truncate();
        assert_eq!(t.row_count(), 0);
        // pk is cleared too: same key insert succeeds
        t.insert(vec![row(1, "a", "x")]).unwrap();
    }
}
