//! Allocation and throughput counters for the hot row path.
//!
//! These are plain relaxed atomics — cheap enough to bump from the hottest
//! loops without taking the dip-trace collector lock per event. Harness
//! code (the `dipbench` CLI, benches) drains them once per run and
//! publishes the totals as `relstore.alloc.*` dip-trace counters, so they
//! show up in run records next to the `relstore.rows_out.*` series.

use std::sync::atomic::{AtomicU64, Ordering};

static STR_NEW: AtomicU64 = AtomicU64::new(0);
static ROWS_MATERIALIZED: AtomicU64 = AtomicU64::new(0);
static ROWS_INSERTED: AtomicU64 = AtomicU64::new(0);

/// One fresh shared-string allocation (`Value::str`). Clones of the
/// resulting value do not count — that is the point of the representation.
#[inline]
pub(crate) fn count_str_new() {
    STR_NEW.fetch_add(1, Ordering::Relaxed);
}

/// `n` rows materialized (copied out of a table) by scan-shaped operators.
#[inline]
pub fn count_rows_materialized(n: u64) {
    if n > 0 {
        ROWS_MATERIALIZED.fetch_add(n, Ordering::Relaxed);
    }
}

/// `n` rows inserted into a table.
#[inline]
pub fn count_rows_inserted(n: u64) {
    if n > 0 {
        ROWS_INSERTED.fetch_add(n, Ordering::Relaxed);
    }
}

/// Current counter values as `(name, total)` pairs, without resetting.
pub fn snapshot() -> Vec<(&'static str, u64)> {
    vec![
        ("relstore.alloc.str_new", STR_NEW.load(Ordering::Relaxed)),
        (
            "relstore.alloc.rows_materialized",
            ROWS_MATERIALIZED.load(Ordering::Relaxed),
        ),
        (
            "relstore.alloc.rows_inserted",
            ROWS_INSERTED.load(Ordering::Relaxed),
        ),
    ]
}

/// Take and reset all counters — one `(name, delta)` pair per counter that
/// moved since the last drain.
pub fn drain() -> Vec<(&'static str, u64)> {
    [
        ("relstore.alloc.str_new", &STR_NEW),
        ("relstore.alloc.rows_materialized", &ROWS_MATERIALIZED),
        ("relstore.alloc.rows_inserted", &ROWS_INSERTED),
    ]
    .into_iter()
    .map(|(name, c)| (name, c.swap(0, Ordering::Relaxed)))
    .filter(|(_, n)| *n > 0)
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_resets() {
        // other tests allocate strings concurrently; just check that a
        // fresh allocation is visible and that drain leaves zero behind
        let _ = drain();
        let _v = crate::value::Value::str("counted");
        let drained = drain();
        assert!(drained
            .iter()
            .any(|(name, n)| *name == "relstore.alloc.str_new" && *n >= 1));
    }
}
