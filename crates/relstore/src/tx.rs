//! Undo-log write transactions: instance-level atomicity for the store.
//!
//! The paper's reference implementation runs every process instance inside
//! a federated-DBMS procedure, making it implicitly atomic — a failed
//! instance leaves no partial state behind. This module gives the
//! reproduction the same guarantee: [`begin`] opens a [`TxScope`] on the
//! current thread, and every mutation of a catalog-owned [`Table`] while
//! the scope is active appends a *physical undo record* to that table's
//! journal. `commit()` discards (or, for a nested scope, merges) the
//! records; dropping the scope without committing rolls every touched
//! table back to its pre-transaction state. Rows, slots, indexes, the live
//! count and the change-capture log are all restored byte-identically —
//! only the `generation` counter moves forward, so generation-keyed
//! snapshot caches can never serve rolled-back state.
//!
//! Scopes are thread-local and nest: an inner scope (e.g. a materialized
//! view refresh guarding its own drain-and-apply) merges its undo records
//! into the enclosing transaction on commit, so an outer rollback still
//! undoes the inner work. Cross-thread branches (FORK steps, per-mart
//! loader threads) join the parent transaction via [`handle`]/[`adopt`].
//!
//! A process-wide debug switch ([`set_rollback_disabled`]) turns rollback
//! into a no-op discard; the crash-recovery CI gate uses it to prove that
//! the byte-identity check actually depends on rollback.

use crate::table::Table;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

static NEXT_TX_ID: AtomicU64 = AtomicU64::new(1);
static ROLLBACK_DISABLED: AtomicBool = AtomicBool::new(false);

/// The shared core of one transaction: its id and the set of tables that
/// hold undo records for it. Tables register themselves on first touch.
pub struct TxShared {
    id: u64,
    tables: Mutex<Vec<Weak<Table>>>,
}

impl TxShared {
    pub fn id(&self) -> u64 {
        self.id
    }

    pub(crate) fn register(&self, table: Weak<Table>) {
        self.tables.lock().push(table);
    }
}

thread_local! {
    static ACTIVE: RefCell<Vec<Arc<TxShared>>> = const { RefCell::new(Vec::new()) };
}

/// Open a transaction scope on this thread. Dropping the scope without
/// calling [`TxScope::commit`] rolls back — the RAII shape that makes
/// `?`-propagated errors atomic for free.
pub fn begin() -> TxScope {
    let parent = current();
    let shared = Arc::new(TxShared {
        id: NEXT_TX_ID.fetch_add(1, Ordering::Relaxed),
        tables: Mutex::new(Vec::new()),
    });
    ACTIVE.with(|a| a.borrow_mut().push(shared.clone()));
    dip_trace::count("tx.begin", 1);
    TxScope {
        shared,
        parent,
        done: false,
    }
}

/// The innermost transaction active on this thread, if any. Table mutators
/// journal their undo records against it.
pub(crate) fn current() -> Option<Arc<TxShared>> {
    ACTIVE.with(|a| a.borrow().last().cloned())
}

/// Whether any transaction is active on this thread — a cheap pre-check
/// before cloning state for the journal.
pub(crate) fn active() -> bool {
    ACTIVE.with(|a| !a.borrow().is_empty())
}

/// A cloneable reference to the innermost active transaction, for crossing
/// a thread boundary (forked branches do not inherit thread-locals).
#[derive(Clone)]
pub struct TxHandle {
    shared: Arc<TxShared>,
}

/// Snapshot the current transaction for a child thread; `None` outside any
/// scope.
pub fn handle() -> Option<TxHandle> {
    current().map(|shared| TxHandle { shared })
}

/// Join a snapshotted transaction on this thread: mutations journal into
/// the parent's undo log until the returned guard drops.
pub fn adopt(h: &TxHandle) -> TxAdoption {
    ACTIVE.with(|a| a.borrow_mut().push(h.shared.clone()));
    TxAdoption {
        shared: h.shared.clone(),
    }
}

/// Guard for an adopted transaction; detaches this thread on drop without
/// committing or rolling back (the owning scope decides).
pub struct TxAdoption {
    shared: Arc<TxShared>,
}

impl Drop for TxAdoption {
    fn drop(&mut self) {
        pop_shared(&self.shared);
    }
}

fn pop_shared(shared: &Arc<TxShared>) {
    ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        if let Some(pos) = a.iter().rposition(|s| Arc::ptr_eq(s, shared)) {
            a.remove(pos);
        }
    });
}

/// An open transaction. Commit is a no-op on the data (the store mutates
/// in place); rollback restores the pre-transaction state of every touched
/// table.
pub struct TxScope {
    shared: Arc<TxShared>,
    parent: Option<Arc<TxShared>>,
    done: bool,
}

impl TxScope {
    /// Keep the transaction's effects. A top-level commit discards the undo
    /// records; a nested commit merges them into the enclosing transaction
    /// so an outer rollback still undoes this work.
    pub fn commit(mut self) {
        self.done = true;
        pop_shared(&self.shared);
        let tables = std::mem::take(&mut *self.shared.tables.lock());
        for t in tables {
            let Some(t) = t.upgrade() else { continue };
            match &self.parent {
                None => t.tx_discard(self.shared.id),
                Some(p) => t.tx_merge(self.shared.id, p),
            }
        }
        dip_trace::count("tx.commit", 1);
    }

    /// Explicitly undo the transaction (dropping the scope does the same).
    pub fn rollback(mut self) {
        self.done = true;
        pop_shared(&self.shared);
        do_rollback(&self.shared);
    }

    /// The transaction id (diagnostics and tests).
    pub fn id(&self) -> u64 {
        self.shared.id
    }
}

impl Drop for TxScope {
    fn drop(&mut self) {
        if !self.done {
            pop_shared(&self.shared);
            do_rollback(&self.shared);
        }
    }
}

fn do_rollback(shared: &TxShared) {
    let tables = std::mem::take(&mut *shared.tables.lock());
    if ROLLBACK_DISABLED.load(Ordering::Relaxed) {
        for t in tables {
            if let Some(t) = t.upgrade() {
                t.tx_discard(shared.id);
            }
        }
        dip_trace::count("tx.rollback_disabled", 1);
        return;
    }
    let mut records = 0u64;
    for t in tables {
        if let Some(t) = t.upgrade() {
            records += t.tx_rollback(shared.id);
        }
    }
    dip_trace::count("tx.rollback", 1);
    dip_trace::count("tx.rollback.records", records);
}

/// Debug switch for the crash-gate "teeth" check: when disabled, rollback
/// silently discards the undo log instead of applying it, so partial
/// writes of a failed instance survive. Never set in production paths.
pub fn set_rollback_disabled(disabled: bool) {
    ROLLBACK_DISABLED.store(disabled, Ordering::Relaxed);
}

/// Whether rollback is currently disabled (see [`set_rollback_disabled`]).
pub fn rollback_disabled() -> bool {
    ROLLBACK_DISABLED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::index::IndexKind;
    use crate::schema::RelSchema;
    use crate::value::{SqlType, Value};

    fn table() -> Arc<Table> {
        let schema = RelSchema::of(&[("id", SqlType::Int), ("city", SqlType::Str)]).shared();
        Table::new("t", schema)
            .with_primary_key(&["id"])
            .unwrap()
            .with_index("by_city", &["city"], false, IndexKind::Hash)
            .unwrap()
            .into_shared()
    }

    fn row(i: i64, c: &str) -> Vec<Value> {
        vec![Value::Int(i), Value::str(c)]
    }

    #[test]
    fn rollback_restores_insert() {
        let t = table();
        t.insert(vec![row(1, "Berlin")]).unwrap();
        let before = t.state_dump();
        let tx = begin();
        t.insert(vec![row(2, "Paris"), row(3, "Rome")]).unwrap();
        assert_eq!(t.row_count(), 3);
        drop(tx);
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.state_dump(), before);
        // the rolled-back keys are reusable: indexes were cleaned up
        t.insert(vec![row(2, "Paris")]).unwrap();
    }

    #[test]
    fn commit_keeps_effects() {
        let t = table();
        let tx = begin();
        t.insert(vec![row(1, "Berlin")]).unwrap();
        tx.commit();
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn rollback_restores_delete_update_upsert() {
        let t = table();
        t.insert((1..=6).map(|i| row(i, "x")).collect::<Vec<_>>())
            .unwrap();
        let before = t.state_dump();
        let tx = begin();
        t.delete_where(&Expr::col(0).le(Expr::lit(2))).unwrap();
        t.update_where(&Expr::col(0).eq(Expr::lit(3)), &[(1, Expr::lit("y"))])
            .unwrap();
        t.upsert(vec![row(4, "z"), row(9, "new")]).unwrap();
        drop(tx);
        assert_eq!(t.state_dump(), before);
    }

    #[test]
    fn rollback_restores_full_wipe_and_truncate() {
        let t = table();
        t.insert((1..=4).map(|i| row(i, "x")).collect::<Vec<_>>())
            .unwrap();
        let before = t.state_dump();
        {
            let _tx = begin();
            // full-wipe fast path: predicate matches everything
            t.delete_where(&Expr::col(0).ge(Expr::lit(0))).unwrap();
            assert_eq!(t.row_count(), 0);
        }
        assert_eq!(t.state_dump(), before);
        {
            let _tx = begin();
            t.truncate();
        }
        assert_eq!(t.state_dump(), before);
    }

    #[test]
    fn partial_insert_ignore_is_undone() {
        let schema = RelSchema::of(&[("id", SqlType::Int)]).shared();
        let t = Table::new("n", schema)
            .with_primary_key(&["id"])
            .unwrap()
            .into_shared();
        let before = t.state_dump();
        let tx = begin();
        // second row violates NOT NULL via schema? use duplicate-free rows
        t.insert_ignore_duplicates(vec![vec![Value::Int(1)], vec![Value::Int(2)]])
            .unwrap();
        drop(tx);
        assert_eq!(t.state_dump(), before);
    }

    #[test]
    fn change_capture_log_is_restored() {
        let schema = RelSchema::of(&[("id", SqlType::Int)]).shared();
        let t = Table::new("c", schema)
            .with_primary_key(&["id"])
            .unwrap()
            .with_change_capture()
            .into_shared();
        t.insert(vec![vec![Value::Int(1)]]).unwrap();
        let before = t.state_dump();
        let tx = begin();
        t.insert(vec![vec![Value::Int(2)]]).unwrap();
        let drained = t.drain_changes();
        assert_eq!(drained.len(), 2);
        drop(tx);
        // the pending change log is back, including the pre-tx entry
        assert_eq!(t.state_dump(), before);
        assert_eq!(t.drain_changes().len(), 1);
    }

    #[test]
    fn nested_commit_merges_into_parent() {
        let t = table();
        let before = t.state_dump();
        let outer = begin();
        t.insert(vec![row(1, "a")]).unwrap();
        let inner = begin();
        t.insert(vec![row(2, "b")]).unwrap();
        inner.commit();
        assert_eq!(t.row_count(), 2);
        drop(outer);
        // outer rollback undoes the inner committed work too
        assert_eq!(t.state_dump(), before);
    }

    #[test]
    fn adopted_thread_joins_parent_tx() {
        let t = table();
        let before = t.state_dump();
        let outer = begin();
        let h = handle().unwrap();
        let t2 = t.clone();
        std::thread::spawn(move || {
            let _g = adopt(&h);
            t2.insert(vec![row(7, "forked")]).unwrap();
        })
        .join()
        .unwrap();
        assert_eq!(t.row_count(), 1);
        drop(outer);
        assert_eq!(t.state_dump(), before);
    }

    /// Seeded-interleaving contention on the handle()/adopt() handoff:
    /// several threads adopt the same parent transaction and mutate one
    /// shared table concurrently, with per-thread seeded yield points
    /// perturbing the interleaving. Whatever order the undo journal
    /// accumulated in, rollback must restore the byte-exact pre-tx state,
    /// and a commit must keep every thread's writes.
    #[test]
    fn adopted_contention_rolls_back_and_commits_exactly() {
        let mix = |mut z: u64| {
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let run = |seed: u64, commit: bool| {
            let t = table();
            t.insert((0..8).map(|i| row(i, "base")).collect::<Vec<_>>())
                .unwrap();
            let before = t.state_dump();
            let outer = begin();
            std::thread::scope(|scope| {
                for worker in 0..4u64 {
                    let h = handle().unwrap();
                    let t = t.clone();
                    scope.spawn(move || {
                        let _g = adopt(&h);
                        // disjoint key range per thread; ops and yield
                        // points drawn from the per-thread seed
                        let base = 100 + 20 * worker as i64;
                        for op in 0..12u64 {
                            let r = mix(seed ^ (worker << 32) ^ op);
                            for _ in 0..r % 4 {
                                std::thread::yield_now();
                            }
                            let key = base + (r % 20) as i64;
                            match r % 3 {
                                0 => drop(t.insert_ignore_duplicates(vec![row(key, "ins")])),
                                1 => drop(t.upsert(vec![row(key, "ups")])),
                                _ => drop(t.delete_where(&Expr::col(0).eq(Expr::lit(key)))),
                            }
                        }
                        // every thread also touches the shared pre-tx rows
                        t.update_where(
                            &Expr::col(0).eq(Expr::lit(worker as i64)),
                            &[(1, Expr::lit("touched"))],
                        )
                        .unwrap();
                    });
                }
            });
            if commit {
                outer.commit();
                for worker in 0..4i64 {
                    let r = t.get_by_pk(&[Value::Int(worker)]).unwrap();
                    assert_eq!(r[1], Value::str("touched"), "committed update lost");
                }
            } else {
                drop(outer);
                assert_eq!(
                    t.state_dump(),
                    before,
                    "seed {seed}: contended rollback diverged from the pre-tx state"
                );
            }
        };
        for seed in [1, 2, 0xD1B] {
            run(seed, false);
            run(seed, true);
        }
    }

    #[test]
    fn disabled_rollback_keeps_partial_writes() {
        let t = table();
        set_rollback_disabled(true);
        let tx = begin();
        t.insert(vec![row(1, "kept")]).unwrap();
        drop(tx);
        set_rollback_disabled(false);
        assert_eq!(t.row_count(), 1, "rollback was disabled");
    }

    #[test]
    fn mutations_outside_any_tx_journal_nothing() {
        let t = table();
        t.insert(vec![row(1, "a")]).unwrap();
        assert_eq!(t.undo_footprint(), 0);
        let tx = begin();
        t.insert(vec![row(2, "b")]).unwrap();
        assert_eq!(t.undo_footprint(), 1);
        tx.commit();
        assert_eq!(t.undo_footprint(), 0, "commit discards the journal");
    }
}
