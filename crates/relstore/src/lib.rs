//! # dip-relstore — in-memory relational store
//!
//! The relational substrate of the DIPBench reproduction. The benchmark's
//! environment machine (ES) hosts "one DBMS installation with eleven
//! database instances"; each instance is a [`catalog::Database`] from this
//! crate.
//!
//! Features, all built from scratch:
//!
//! * typed [`value::Value`]s with SQL three-valued comparison semantics;
//! * slotted heap [`table::Table`]s with primary keys, hash/B-tree
//!   secondary indexes and statement-atomic batch inserts;
//! * a programmatic [`query::Plan`] language with a materializing executor
//!   (filter/project/hash-join/union-distinct/aggregate/sort/limit) and a
//!   rule-based optimizer (predicate + projection pushdown);
//! * AFTER-INSERT triggers and stored procedures — the two building blocks
//!   of the paper's federated-DBMS reference implementation (Fig. 9);
//! * materialized views with full and incremental refresh (`OrdersMV`,
//!   data-mart MVs);
//! * change capture for incremental maintenance.
//!
//! ```
//! use dip_relstore::prelude::*;
//!
//! let db = Database::new("demo");
//! let schema = RelSchema::of(&[("id", SqlType::Int), ("city", SqlType::Str)]).shared();
//! db.create_table(Table::new("t", schema).with_primary_key(&["id"]).unwrap());
//! db.insert_into("t", vec![vec![Value::Int(1), Value::str("Berlin")]]).unwrap();
//! let rel = Plan::scan("t").filter(Expr::col(1).eq(Expr::lit("Berlin"))).run(&db).unwrap();
//! assert_eq!(rel.len(), 1);
//! ```

pub mod alloc;
pub mod catalog;
pub mod error;
pub mod expr;
pub mod index;
pub mod mview;
pub mod query;
pub mod row;
pub mod schema;
pub mod table;
pub mod tx;
pub mod value;

/// The items almost every user of the crate needs.
pub mod prelude {
    pub use crate::catalog::{Database, ProcFn, TriggerFn};
    pub use crate::error::{StoreError, StoreResult, TransportFault, TransportKind};
    pub use crate::expr::{CmpOp, Expr, ScalarFunc};
    pub use crate::index::IndexKind;
    pub use crate::mview::{MatView, RefreshMode};
    pub use crate::query::{
        default_mode, execute, set_default_mode, AggExpr, AggFunc, ExecMode, JoinKind, Plan,
        ProjExpr,
    };
    pub use crate::row::{Relation, Row};
    pub use crate::schema::{Column, RelSchema, SchemaRef};
    pub use crate::table::{Change, Table};
    pub use crate::tx;
    pub use crate::tx::TxScope;
    pub use crate::value::{days_from_civil, parse_date, render_date, SqlType, Value};
}
