//! Error type shared by all store operations.

use std::fmt;

/// Errors raised by the relational store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A named table does not exist in the catalog.
    NoSuchTable(String),
    /// A named column does not exist in a schema.
    NoSuchColumn(String),
    /// A named stored procedure does not exist.
    NoSuchProcedure(String),
    /// A named materialized view does not exist.
    NoSuchView(String),
    /// Primary-key or unique-index violation.
    DuplicateKey { table: String, key: String },
    /// A row does not match the table schema (arity or type).
    SchemaMismatch(String),
    /// Expression evaluation failed (bad types, division by zero, …).
    Eval(String),
    /// A constraint check failed (NOT NULL, foreign key, …).
    Constraint(String),
    /// A trigger or stored procedure reported a failure.
    Procedure(String),
    /// Catch-all for invalid plans or misuse of the API.
    Invalid(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            StoreError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            StoreError::NoSuchProcedure(p) => write!(f, "no such procedure: {p}"),
            StoreError::NoSuchView(v) => write!(f, "no such materialized view: {v}"),
            StoreError::DuplicateKey { table, key } => {
                write!(f, "duplicate key {key} in table {table}")
            }
            StoreError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            StoreError::Eval(m) => write!(f, "evaluation error: {m}"),
            StoreError::Constraint(m) => write!(f, "constraint violation: {m}"),
            StoreError::Procedure(m) => write!(f, "procedure error: {m}"),
            StoreError::Invalid(m) => write!(f, "invalid operation: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Convenient result alias for store operations.
pub type StoreResult<T> = Result<T, StoreError>;
