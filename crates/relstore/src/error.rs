//! Error type shared by all store operations — and the workspace-wide
//! transport-fault vocabulary.
//!
//! `TransportFault` lives here rather than in `dip-netsim` because this is
//! the one crate every error enum (`StoreError`, `ServiceError`,
//! `MtmError`, `FedError`) already depends on: placing it at the base of
//! the dependency graph lets each layer carry the fault *typed* instead of
//! stringified, so retry policy can ask `is_transient()` anywhere.

use std::fmt;

/// The kind of transport-level failure a remote operation hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// The message was silently lost; the caller timed out waiting.
    Drop,
    /// The link stalled past the caller's timeout.
    Timeout,
    /// The link is partitioned; the failure was immediate.
    Partition,
    /// The caller's circuit breaker is open; no attempt was made.
    CircuitOpen,
    /// The integration system itself was killed mid-operation (deterministic
    /// crash injection). NOT transient: the instance must not be retried or
    /// dead-lettered by the dying process — recovery replays it after
    /// restart.
    Crash,
}

impl TransportKind {
    pub fn label(self) -> &'static str {
        match self {
            TransportKind::Drop => "drop",
            TransportKind::Timeout => "timeout",
            TransportKind::Partition => "partition",
            TransportKind::CircuitOpen => "circuit-open",
            TransportKind::Crash => "crash",
        }
    }
}

/// A typed transport failure: which endpoint, what kind, how many attempts
/// the resilience layer made before giving up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportFault {
    pub endpoint: String,
    pub kind: TransportKind,
    /// Attempts made before surfacing the fault (≥ 1 unless the breaker
    /// rejected the operation outright).
    pub attempts: u32,
}

impl TransportFault {
    /// Whether a retry of the faulted operation could plausibly succeed.
    /// Everything except an injected system crash is transient.
    pub fn is_transient(&self) -> bool {
        self.kind != TransportKind::Crash
    }
}

impl fmt::Display for TransportFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transport {} to {} after {} attempt(s)",
            self.kind.label(),
            self.endpoint,
            self.attempts
        )
    }
}

/// Errors raised by the relational store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A named table does not exist in the catalog.
    NoSuchTable(String),
    /// A named column does not exist in a schema.
    NoSuchColumn(String),
    /// A named stored procedure does not exist.
    NoSuchProcedure(String),
    /// A named materialized view does not exist.
    NoSuchView(String),
    /// Primary-key or unique-index violation.
    DuplicateKey { table: String, key: String },
    /// A row does not match the table schema (arity or type).
    SchemaMismatch(String),
    /// Expression evaluation failed (bad types, division by zero, …).
    Eval(String),
    /// A constraint check failed (NOT NULL, foreign key, …).
    Constraint(String),
    /// A trigger or stored procedure reported a failure.
    Procedure(String),
    /// Catch-all for invalid plans or misuse of the API.
    Invalid(String),
    /// A transport-level failure reaching a remote store (injected by the
    /// fault schedule, or a breaker rejection). Transient: retryable.
    Transport(TransportFault),
}

impl StoreError {
    /// Whether retrying the same operation could plausibly succeed.
    /// Transport faults are the only transient class — every other variant
    /// is a deterministic property of the data or the request. An injected
    /// crash travels as a transport fault but is *not* transient.
    pub fn is_transient(&self) -> bool {
        matches!(self, StoreError::Transport(t) if t.is_transient())
    }

    /// The transport fault carried by this error, if any.
    pub fn transport(&self) -> Option<&TransportFault> {
        match self {
            StoreError::Transport(t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            StoreError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            StoreError::NoSuchProcedure(p) => write!(f, "no such procedure: {p}"),
            StoreError::NoSuchView(v) => write!(f, "no such materialized view: {v}"),
            StoreError::DuplicateKey { table, key } => {
                write!(f, "duplicate key {key} in table {table}")
            }
            StoreError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            StoreError::Eval(m) => write!(f, "evaluation error: {m}"),
            StoreError::Constraint(m) => write!(f, "constraint violation: {m}"),
            StoreError::Procedure(m) => write!(f, "procedure error: {m}"),
            StoreError::Invalid(m) => write!(f, "invalid operation: {m}"),
            StoreError::Transport(t) => write!(f, "{t}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<TransportFault> for StoreError {
    fn from(t: TransportFault) -> Self {
        StoreError::Transport(t)
    }
}

/// Convenient result alias for store operations.
pub type StoreResult<T> = Result<T, StoreError>;
