//! Scalar expression language evaluated over rows.
//!
//! Expressions reference columns by *position*; the query-builder helpers in
//! [`crate::query`] resolve names to positions against a schema at plan-build
//! time, so evaluation itself never does string lookups.

use crate::error::{StoreError, StoreResult};
use crate::row::Row;
use crate::value::{date_parts, Value};
use std::fmt;
use std::sync::Arc;

/// Positional access to a row's values.
///
/// The streaming executor evaluates expressions over rows that are not
/// contiguous `Vec<Value>`s — e.g. the two halves of a join emission — so
/// evaluation is generic over this accessor instead of taking `&Row`.
pub trait RowAccess {
    fn value_at(&self, i: usize) -> Option<&Value>;
}

impl RowAccess for [Value] {
    fn value_at(&self, i: usize) -> Option<&Value> {
        self.get(i)
    }
}

impl RowAccess for Row {
    fn value_at(&self, i: usize) -> Option<&Value> {
        self.get(i)
    }
}

/// Binary comparison operators (SQL three-valued semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    /// Year of a `Date` value — the DWH time dimension's `Year()` built-in.
    Year,
    /// Month of a `Date` value.
    Month,
    /// Day-of-month of a `Date` value.
    Day,
    Upper,
    Lower,
    /// String length in bytes.
    Length,
    /// Absolute value of a numeric.
    Abs,
    /// Round a float to the nearest integer value (still Float).
    Round,
    CastInt,
    CastFloat,
    CastStr,
}

/// A scalar expression tree.
#[derive(Clone)]
pub enum Expr {
    /// Column reference by position in the input row.
    Col(usize),
    /// Literal value.
    Lit(Value),
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    IsNull(Box<Expr>),
    /// SQL LIKE with `%` (any run) and `_` (any char) wildcards.
    Like(Box<Expr>, String),
    /// Membership in a literal list.
    InList(Box<Expr>, Vec<Value>),
    /// First non-null argument.
    Coalesce(Vec<Expr>),
    /// String concatenation of all arguments (nulls render as empty).
    Concat(Vec<Expr>),
    Func(ScalarFunc, Box<Expr>),
    /// `CASE WHEN cond THEN a ELSE b END`.
    Case(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Escape hatch for computed enrichments (e.g. semantic value maps).
    Apply(ApplyFn, Vec<Expr>),
}

/// The callable of an [`Expr::Apply`] node.
pub type ApplyFn = Arc<dyn Fn(&[Value]) -> StoreResult<Value> + Send + Sync>;

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(i) => write!(f, "#{i}"),
            Expr::Lit(v) => write!(f, "{v:?}"),
            Expr::Cmp(op, a, b) => write!(f, "({a:?} {op:?} {b:?})"),
            Expr::Arith(op, a, b) => write!(f, "({a:?} {op:?} {b:?})"),
            Expr::And(a, b) => write!(f, "({a:?} AND {b:?})"),
            Expr::Or(a, b) => write!(f, "({a:?} OR {b:?})"),
            Expr::Not(e) => write!(f, "NOT {e:?}"),
            Expr::IsNull(e) => write!(f, "{e:?} IS NULL"),
            Expr::Like(e, p) => write!(f, "{e:?} LIKE {p:?}"),
            Expr::InList(e, l) => write!(f, "{e:?} IN {l:?}"),
            Expr::Coalesce(a) => write!(f, "COALESCE{a:?}"),
            Expr::Concat(a) => write!(f, "CONCAT{a:?}"),
            Expr::Func(func, e) => write!(f, "{func:?}({e:?})"),
            Expr::Case(c, t, e) => write!(f, "CASE {c:?} THEN {t:?} ELSE {e:?}"),
            Expr::Apply(_, a) => write!(f, "APPLY(<fn>, {a:?})"),
        }
    }
}

// The builder methods mirror SQL operator names; `not`/`add`/`sub`/`mul`/
// `div` intentionally shadow the std operator-trait names because they
// build AST nodes rather than evaluate.
#[allow(clippy::should_implement_trait)]
impl Expr {
    pub fn col(idx: usize) -> Expr {
        Expr::Col(idx)
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(rhs))
    }
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(rhs))
    }
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(rhs))
    }
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(rhs))
    }
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(rhs))
    }
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(rhs))
    }
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }
    pub fn like(self, pattern: impl Into<String>) -> Expr {
        Expr::Like(Box::new(self), pattern.into())
    }
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Add, Box::new(self), Box::new(rhs))
    }
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Sub, Box::new(self), Box::new(rhs))
    }
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Mul, Box::new(self), Box::new(rhs))
    }
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Div, Box::new(self), Box::new(rhs))
    }
    pub fn func(f: ScalarFunc, arg: Expr) -> Expr {
        Expr::Func(f, Box::new(arg))
    }
    pub fn in_list(self, values: Vec<Value>) -> Expr {
        Expr::InList(Box::new(self), values)
    }
    pub fn case(cond: Expr, then: Expr, otherwise: Expr) -> Expr {
        Expr::Case(Box::new(cond), Box::new(then), Box::new(otherwise))
    }

    /// Evaluate against a materialized row.
    pub fn eval(&self, row: &Row) -> StoreResult<Value> {
        self.eval_on(row.as_slice())
    }

    /// Evaluate against anything with positional value access (joined row
    /// halves, borrowed slices, …) without materializing it first.
    pub fn eval_on<R: RowAccess + ?Sized>(&self, row: &R) -> StoreResult<Value> {
        match self {
            Expr::Col(i) => row
                .value_at(*i)
                .cloned()
                .ok_or_else(|| StoreError::Eval(format!("column index {i} out of range"))),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Cmp(op, a, b) => {
                let (a, b) = (a.eval_on(row)?, b.eval_on(row)?);
                if a.is_null() || b.is_null() {
                    return Ok(Value::Null);
                }
                let ord = a.total_cmp(&b);
                let r = match op {
                    CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                    CmpOp::Ne => ord != std::cmp::Ordering::Equal,
                    CmpOp::Lt => ord == std::cmp::Ordering::Less,
                    CmpOp::Le => ord != std::cmp::Ordering::Greater,
                    CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                    CmpOp::Ge => ord != std::cmp::Ordering::Less,
                };
                Ok(Value::Bool(r))
            }
            Expr::Arith(op, a, b) => {
                let (a, b) = (a.eval_on(row)?, b.eval_on(row)?);
                if a.is_null() || b.is_null() {
                    return Ok(Value::Null);
                }
                // Integer arithmetic when both sides are ints (except division).
                if let (Value::Int(x), Value::Int(y)) = (&a, &b) {
                    return Ok(match op {
                        ArithOp::Add => Value::Int(x.wrapping_add(*y)),
                        ArithOp::Sub => Value::Int(x.wrapping_sub(*y)),
                        ArithOp::Mul => Value::Int(x.wrapping_mul(*y)),
                        ArithOp::Div => {
                            if *y == 0 {
                                return Err(StoreError::Eval("division by zero".into()));
                            }
                            Value::Int(x / y)
                        }
                    });
                }
                let (x, y) = (
                    a.to_float()
                        .ok_or_else(|| StoreError::Eval(format!("non-numeric: {a}")))?,
                    b.to_float()
                        .ok_or_else(|| StoreError::Eval(format!("non-numeric: {b}")))?,
                );
                Ok(match op {
                    ArithOp::Add => Value::Float(x + y),
                    ArithOp::Sub => Value::Float(x - y),
                    ArithOp::Mul => Value::Float(x * y),
                    ArithOp::Div => {
                        if y == 0.0 {
                            return Err(StoreError::Eval("division by zero".into()));
                        }
                        Value::Float(x / y)
                    }
                })
            }
            Expr::And(a, b) => {
                // SQL three-valued AND: false dominates null.
                let a = a.eval_on(row)?;
                if let Value::Bool(false) = a {
                    return Ok(Value::Bool(false));
                }
                let b = b.eval_on(row)?;
                Ok(match (a, b) {
                    (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
                    (_, Value::Bool(false)) => Value::Bool(false),
                    _ => Value::Null,
                })
            }
            Expr::Or(a, b) => {
                let a = a.eval_on(row)?;
                if let Value::Bool(true) = a {
                    return Ok(Value::Bool(true));
                }
                let b = b.eval_on(row)?;
                Ok(match (a, b) {
                    (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
                    (_, Value::Bool(true)) => Value::Bool(true),
                    _ => Value::Null,
                })
            }
            Expr::Not(e) => Ok(match e.eval_on(row)? {
                Value::Bool(b) => Value::Bool(!b),
                Value::Null => Value::Null,
                v => return Err(StoreError::Eval(format!("NOT of non-boolean {v}"))),
            }),
            Expr::IsNull(e) => Ok(Value::Bool(e.eval_on(row)?.is_null())),
            Expr::Like(e, pat) => match e.eval_on(row)? {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Bool(like_match(&s, pat))),
                v => Err(StoreError::Eval(format!("LIKE on non-string {v}"))),
            },
            Expr::InList(e, list) => {
                let v = e.eval_on(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                Ok(Value::Bool(list.iter().any(|x| x == &v)))
            }
            Expr::Coalesce(args) => {
                for a in args {
                    let v = a.eval_on(row)?;
                    if !v.is_null() {
                        return Ok(v);
                    }
                }
                Ok(Value::Null)
            }
            Expr::Concat(args) => {
                let mut out = String::new();
                for a in args {
                    let v = a.eval_on(row)?;
                    if !v.is_null() {
                        out.push_str(&v.render());
                    }
                }
                Ok(Value::str(out))
            }
            Expr::Func(f, e) => {
                let v = e.eval_on(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                eval_func(*f, v)
            }
            Expr::Case(c, t, e) => {
                if c.eval_on(row)?.is_true() {
                    t.eval_on(row)
                } else {
                    e.eval_on(row)
                }
            }
            Expr::Apply(f, args) => {
                let vals: StoreResult<Vec<Value>> = args.iter().map(|a| a.eval_on(row)).collect();
                f(&vals?)
            }
        }
    }

    /// Evaluate as a predicate: `Null` counts as not-matching, per SQL.
    pub fn matches(&self, row: &Row) -> StoreResult<bool> {
        Ok(self.eval_on(row.as_slice())?.is_true())
    }

    /// Predicate evaluation over any positional row representation.
    pub fn matches_on<R: RowAccess + ?Sized>(&self, row: &R) -> StoreResult<bool> {
        Ok(self.eval_on(row)?.is_true())
    }

    /// Collect the column positions this expression reads.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Col(i) => {
                if !out.contains(i) {
                    out.push(*i);
                }
            }
            Expr::Lit(_) => {}
            Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.referenced_columns(out);
                b.referenced_columns(out);
            }
            Expr::Not(e) | Expr::IsNull(e) | Expr::Like(e, _) | Expr::Func(_, e) => {
                e.referenced_columns(out)
            }
            Expr::InList(e, _) => e.referenced_columns(out),
            Expr::Coalesce(args) | Expr::Concat(args) => {
                for a in args {
                    a.referenced_columns(out);
                }
            }
            Expr::Case(c, t, e) => {
                c.referenced_columns(out);
                t.referenced_columns(out);
                e.referenced_columns(out);
            }
            Expr::Apply(_, args) => {
                for a in args {
                    a.referenced_columns(out);
                }
            }
        }
    }

    /// Rewrite column references through a mapping (old position → new).
    /// Used by the optimizer when pushing expressions below projections.
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Col(i) => Expr::Col(map(*i)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Cmp(op, a, b) => Expr::Cmp(
                *op,
                Box::new(a.remap_columns(map)),
                Box::new(b.remap_columns(map)),
            ),
            Expr::Arith(op, a, b) => Expr::Arith(
                *op,
                Box::new(a.remap_columns(map)),
                Box::new(b.remap_columns(map)),
            ),
            Expr::And(a, b) => Expr::And(
                Box::new(a.remap_columns(map)),
                Box::new(b.remap_columns(map)),
            ),
            Expr::Or(a, b) => Expr::Or(
                Box::new(a.remap_columns(map)),
                Box::new(b.remap_columns(map)),
            ),
            Expr::Not(e) => Expr::Not(Box::new(e.remap_columns(map))),
            Expr::IsNull(e) => Expr::IsNull(Box::new(e.remap_columns(map))),
            Expr::Like(e, p) => Expr::Like(Box::new(e.remap_columns(map)), p.clone()),
            Expr::InList(e, l) => Expr::InList(Box::new(e.remap_columns(map)), l.clone()),
            Expr::Coalesce(args) => {
                Expr::Coalesce(args.iter().map(|a| a.remap_columns(map)).collect())
            }
            Expr::Concat(args) => Expr::Concat(args.iter().map(|a| a.remap_columns(map)).collect()),
            Expr::Func(f, e) => Expr::Func(*f, Box::new(e.remap_columns(map))),
            Expr::Case(c, t, e) => Expr::Case(
                Box::new(c.remap_columns(map)),
                Box::new(t.remap_columns(map)),
                Box::new(e.remap_columns(map)),
            ),
            Expr::Apply(f, args) => Expr::Apply(
                f.clone(),
                args.iter().map(|a| a.remap_columns(map)).collect(),
            ),
        }
    }
}

fn eval_func(f: ScalarFunc, v: Value) -> StoreResult<Value> {
    use ScalarFunc::*;
    Ok(match f {
        Year | Month | Day => {
            let d = match v {
                Value::Date(d) => d,
                other => {
                    return Err(StoreError::Eval(format!(
                        "date function on non-date {other}"
                    )))
                }
            };
            let (y, m, dd) = date_parts(d);
            match f {
                Year => Value::Int(y as i64),
                Month => Value::Int(m as i64),
                _ => Value::Int(dd as i64),
            }
        }
        Upper => Value::str(v.render().to_uppercase()),
        Lower => Value::str(v.render().to_lowercase()),
        Length => Value::Int(v.rendered_len() as i64),
        Abs => match v {
            Value::Int(i) => Value::Int(i.abs()),
            Value::Float(f) => Value::Float(f.abs()),
            other => return Err(StoreError::Eval(format!("ABS of {other}"))),
        },
        Round => match v.to_float() {
            Some(f) => Value::Float(f.round()),
            None => return Err(StoreError::Eval("ROUND of non-numeric".into())),
        },
        CastInt => v
            .to_int()
            .map(Value::Int)
            .ok_or_else(|| StoreError::Eval("cannot cast to INT".into()))?,
        CastFloat => v
            .to_float()
            .map(Value::Float)
            .ok_or_else(|| StoreError::Eval("cannot cast to FLOAT".into()))?,
        CastStr => match v {
            s @ Value::Str(_) => s,
            other => Value::str(other.render()),
        },
    })
}

/// SQL LIKE matcher with `%` and `_` wildcards (iterative, no recursion
/// blow-up on adversarial patterns).
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star_p, mut star_s) = (usize::MAX, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star_p = pi;
            star_s = si;
            pi += 1;
        } else if star_p != usize::MAX {
            star_s += 1;
            si = star_s;
            pi = star_p + 1;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        vec![
            Value::Int(10),
            Value::str("Berlin"),
            Value::Float(2.5),
            Value::Null,
            Value::Date(crate::value::days_from_civil(2008, 4, 7)),
        ]
    }

    #[test]
    fn comparisons_and_logic() {
        let r = row();
        let e = Expr::col(0)
            .gt(Expr::lit(5))
            .and(Expr::col(1).eq(Expr::lit("Berlin")));
        assert!(e.matches(&r).unwrap());
        let e = Expr::col(3).eq(Expr::lit(1));
        assert!(!e.matches(&r).unwrap()); // NULL comparison is not true
        assert!(Expr::col(3).is_null().matches(&r).unwrap());
    }

    #[test]
    fn three_valued_and_or() {
        let r = row();
        // false AND null = false
        let e = Expr::lit(false).and(Expr::col(3).eq(Expr::lit(1)));
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(false));
        // true OR null = true
        let e = Expr::lit(true).or(Expr::col(3).eq(Expr::lit(1)));
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(true));
        // true AND null = null
        let e = Expr::lit(true).and(Expr::col(3).eq(Expr::lit(1)));
        assert_eq!(e.eval(&r).unwrap(), Value::Null);
    }

    #[test]
    fn arithmetic() {
        let r = row();
        assert_eq!(
            Expr::col(0).add(Expr::lit(5)).eval(&r).unwrap(),
            Value::Int(15)
        );
        assert_eq!(
            Expr::col(0).mul(Expr::col(2)).eval(&r).unwrap(),
            Value::Float(25.0)
        );
        assert!(Expr::col(0).div(Expr::lit(0)).eval(&r).is_err());
        // NULL propagates
        assert_eq!(
            Expr::col(3).add(Expr::lit(1)).eval(&r).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn date_functions() {
        let r = row();
        assert_eq!(
            Expr::func(ScalarFunc::Year, Expr::col(4)).eval(&r).unwrap(),
            Value::Int(2008)
        );
        assert_eq!(
            Expr::func(ScalarFunc::Month, Expr::col(4))
                .eval(&r)
                .unwrap(),
            Value::Int(4)
        );
        assert_eq!(
            Expr::func(ScalarFunc::Day, Expr::col(4)).eval(&r).unwrap(),
            Value::Int(7)
        );
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("Berlin", "Ber%"));
        assert!(like_match("Berlin", "%lin"));
        assert!(like_match("Berlin", "B_rl_n"));
        assert!(!like_match("Berlin", "Paris%"));
        assert!(like_match("", "%"));
        assert!(like_match("abc", "%%c"));
        assert!(!like_match("abc", "a%d"));
    }

    #[test]
    fn coalesce_concat_case() {
        let r = row();
        assert_eq!(
            Expr::Coalesce(vec![Expr::col(3), Expr::lit(7)])
                .eval(&r)
                .unwrap(),
            Value::Int(7)
        );
        assert_eq!(
            Expr::Concat(vec![Expr::col(1), Expr::lit("-"), Expr::col(0)])
                .eval(&r)
                .unwrap(),
            Value::str("Berlin-10")
        );
        let e = Expr::case(
            Expr::col(0).gt(Expr::lit(5)),
            Expr::lit("big"),
            Expr::lit("small"),
        );
        assert_eq!(e.eval(&r).unwrap(), Value::str("big"));
    }

    #[test]
    fn referenced_and_remap() {
        let e = Expr::col(2).add(Expr::col(0)).gt(Expr::lit(1));
        let mut cols = vec![];
        e.referenced_columns(&mut cols);
        cols.sort();
        assert_eq!(cols, vec![0, 2]);
        let remapped = e.remap_columns(&|i| i + 10);
        let mut cols = vec![];
        remapped.referenced_columns(&mut cols);
        cols.sort();
        assert_eq!(cols, vec![10, 12]);
    }

    #[test]
    fn apply_escape_hatch() {
        let f = Arc::new(|args: &[Value]| -> StoreResult<Value> {
            Ok(Value::Int(args[0].to_int().unwrap_or(0) * 2))
        });
        let e = Expr::Apply(f, vec![Expr::col(0)]);
        assert_eq!(e.eval(&row()).unwrap(), Value::Int(20));
    }
}
