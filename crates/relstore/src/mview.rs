//! Materialized views with full and incremental refresh.
//!
//! The DIPBench DWH schema contains the materialized view `OrdersMV`
//! (refreshed by P13) and each data mart has its own materialized views
//! (refreshed by P15). A [`MatView`] pairs a defining [`Plan`] with a
//! storage table; `refresh` recomputes it. When the definition is a simple
//! aggregate (`SUM`/`COUNT`) over a single change-capturing base table, an
//! *incremental* refresh applies captured deltas instead — an ablation knob
//! for the benchmark's MV-refresh cost.

use crate::catalog::Database;
use crate::error::{StoreError, StoreResult};
use crate::index::key_of;
use crate::query::plan::{AggFunc, Plan};
use crate::table::Change;
use crate::value::Value;
use parking_lot::Mutex;

/// Refresh strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshMode {
    /// Recompute the definition and replace the storage contents.
    Full,
    /// Apply captured base-table changes as aggregate deltas when the
    /// definition allows it; falls back to full refresh otherwise.
    Incremental,
}

/// A named materialized view.
pub struct MatView {
    pub name: String,
    /// Name of the table that stores the materialized rows.
    pub storage: String,
    pub definition: Plan,
    pub mode: RefreshMode,
    stats: Mutex<ViewStats>,
}

/// Refresh bookkeeping, exposed for benches and reports.
#[derive(Debug, Default, Clone, Copy)]
pub struct ViewStats {
    pub full_refreshes: u64,
    pub incremental_refreshes: u64,
    pub rows_last_refresh: usize,
}

impl std::fmt::Debug for MatView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatView")
            .field("name", &self.name)
            .field("storage", &self.storage)
            .field("mode", &self.mode)
            .finish()
    }
}

impl MatView {
    pub fn new(
        name: impl Into<String>,
        storage: impl Into<String>,
        definition: Plan,
        mode: RefreshMode,
    ) -> MatView {
        MatView {
            name: name.into(),
            storage: storage.into(),
            definition,
            mode,
            stats: Mutex::new(ViewStats::default()),
        }
    }

    pub fn stats(&self) -> ViewStats {
        *self.stats.lock()
    }

    /// Refresh the view; returns the number of rows now materialized.
    ///
    /// The refresh runs in its own transaction scope (nested if the caller
    /// already opened one): an error mid-refresh used to leave the base
    /// table's drained change log lost and the storage table half-applied —
    /// rollback now restores both, so a failed refresh can simply be
    /// retried.
    pub fn refresh(&self, db: &Database) -> StoreResult<usize> {
        let tx = crate::tx::begin();
        let result = match self.mode {
            RefreshMode::Full => self.full_refresh(db),
            RefreshMode::Incremental => match self.try_incremental(db) {
                Ok(Some(n)) => Ok(n),
                Ok(None) => self.full_refresh(db),
                Err(e) => Err(e),
            },
        };
        match &result {
            Ok(_) => tx.commit(),
            Err(_) => tx.rollback(),
        }
        result
    }

    fn full_refresh(&self, db: &Database) -> StoreResult<usize> {
        let rel = self.definition.run(db)?;
        let storage = db.table(&self.storage)?;
        storage.truncate();
        let n = rel.rows.len();
        storage.insert(rel.rows)?;
        // a full refresh consumed whatever deltas were pending
        if let Some(base) = self.simple_aggregate_base() {
            if let Ok(t) = db.table(&base) {
                if t.captures_changes() {
                    let _ = t.drain_changes();
                }
            }
        }
        let mut s = self.stats.lock();
        s.full_refreshes += 1;
        s.rows_last_refresh = n;
        Ok(n)
    }

    /// Detect the `Aggregate(Scan(base))` shape and return the base table.
    fn simple_aggregate_base(&self) -> Option<String> {
        match &self.definition {
            Plan::Aggregate { input, aggs, .. } => {
                let deltable = aggs
                    .iter()
                    .all(|a| matches!(a.func, AggFunc::Sum | AggFunc::Count));
                match (deltable, input.as_ref()) {
                    (
                        true,
                        Plan::Scan {
                            table,
                            predicate: None,
                            projection: None,
                        },
                    ) => Some(table.clone()),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Incremental refresh; `Ok(None)` means "shape not eligible, fall back".
    fn try_incremental(&self, db: &Database) -> StoreResult<Option<usize>> {
        let (group_by, aggs) = match &self.definition {
            Plan::Aggregate { group_by, aggs, .. } => (group_by.clone(), aggs.clone()),
            _ => return Ok(None),
        };
        let base_name = match self.simple_aggregate_base() {
            Some(b) => b,
            None => return Ok(None),
        };
        let base = db.table(&base_name)?;
        if !base.captures_changes() {
            return Ok(None);
        }
        let storage = db.table(&self.storage)?;
        if storage.primary_key_columns().as_deref()
            != Some(&(0..group_by.len()).collect::<Vec<_>>())
        {
            // storage must be keyed by the leading group columns
            return Ok(None);
        }
        let changes = base.drain_changes();
        for ch in changes {
            let (row, sign) = match &ch {
                Change::Insert(r) => (r, 1.0),
                Change::Delete(r) => (r, -1.0),
            };
            let key = key_of(row, &group_by);
            let mut current = storage.get_by_pk(&key).unwrap_or_else(|| {
                let mut init = key.clone();
                // SUM also starts at Int(0): integer inputs keep the
                // accumulator Int-typed, matching the executor's SUM; the
                // first float delta widens it below
                for _ in &aggs {
                    init.push(Value::Int(0));
                }
                init
            });
            for (i, a) in aggs.iter().enumerate() {
                let pos = group_by.len() + i;
                match a.func {
                    AggFunc::Count => {
                        let counted = match &a.input {
                            None => true,
                            Some(e) => !e.eval(row)?.is_null(),
                        };
                        if counted {
                            let c = current[pos].to_int().unwrap_or(0);
                            current[pos] = Value::Int(c + sign as i64);
                        }
                    }
                    AggFunc::Sum => {
                        let v = a
                            .input
                            .as_ref()
                            .ok_or_else(|| StoreError::Invalid("SUM needs input".into()))?
                            .eval(row)?;
                        // integer deltas on an integer accumulator stay
                        // exact (and Int-typed) like the executor's SUM;
                        // mixed input or overflow widens to float
                        let cur = current[pos].clone();
                        if let (Value::Int(c), Value::Int(i)) = (&cur, &v) {
                            let delta = if sign < 0.0 {
                                i.checked_neg()
                            } else {
                                Some(*i)
                            };
                            current[pos] = match delta.and_then(|d| c.checked_add(d)) {
                                Some(t) => Value::Int(t),
                                None => Value::Float(*c as f64 + sign * *i as f64),
                            };
                        } else if let Some(f) = v.to_float() {
                            current[pos] = Value::Float(cur.to_float().unwrap_or(0.0) + sign * f);
                        }
                    }
                    _ => unreachable!("filtered by simple_aggregate_base"),
                }
            }
            // drop groups whose count reached zero
            let count_pos = aggs.iter().position(|a| a.func == AggFunc::Count);
            let dead = count_pos
                .map(|p| current[group_by.len() + p].to_int().unwrap_or(0) <= 0)
                .unwrap_or(false);
            if dead {
                let pred = pk_predicate(&key);
                storage.delete_where(&pred)?;
            } else {
                storage.upsert(vec![current])?;
            }
        }
        let n = storage.row_count();
        let mut s = self.stats.lock();
        s.incremental_refreshes += 1;
        s.rows_last_refresh = n;
        Ok(Some(n))
    }
}

/// Equality predicate over the leading key columns.
fn pk_predicate(key: &[Value]) -> crate::expr::Expr {
    use crate::expr::Expr;
    let mut it = key.iter().enumerate();
    let (i0, v0) = it.next().expect("non-empty key");
    let mut pred = Expr::col(i0).eq(Expr::Lit(v0.clone()));
    for (i, v) in it {
        pred = pred.and(Expr::col(i).eq(Expr::Lit(v.clone())));
    }
    pred
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::query::plan::AggExpr;
    use crate::schema::RelSchema;
    use crate::table::Table;
    use crate::value::SqlType;

    /// orders(city, price) -> mv(city, revenue SUM, cnt COUNT)
    fn setup(mode: RefreshMode) -> Database {
        let db = Database::new("dwh");
        let orders = RelSchema::of(&[("city", SqlType::Str), ("price", SqlType::Float)]).shared();
        db.create_table(Table::new("orders", orders).with_change_capture());
        let mv_schema = RelSchema::of(&[
            ("city", SqlType::Str),
            ("revenue", SqlType::Float),
            ("cnt", SqlType::Int),
        ])
        .shared();
        db.create_table(
            Table::new("orders_mv", mv_schema)
                .with_primary_key(&["city"])
                .unwrap(),
        );
        let def = Plan::scan("orders").aggregate(
            vec![0],
            vec![
                AggExpr::new(AggFunc::Sum, Expr::col(1), "revenue"),
                AggExpr::count_star("cnt"),
            ],
        );
        db.create_view(MatView::new("orders_mv", "orders_mv", def, mode));
        db
    }

    fn add(db: &Database, city: &str, price: f64) {
        db.table("orders")
            .unwrap()
            .insert(vec![vec![Value::str(city), Value::Float(price)]])
            .unwrap();
    }

    #[test]
    fn full_refresh_materializes() {
        let db = setup(RefreshMode::Full);
        add(&db, "Berlin", 10.0);
        add(&db, "Berlin", 5.0);
        add(&db, "Paris", 7.0);
        let n = db.refresh_view("orders_mv").unwrap();
        assert_eq!(n, 2);
        let mv = db.table("orders_mv").unwrap();
        let row = mv.get_by_pk(&[Value::str("Berlin")]).unwrap();
        assert_eq!(row[1], Value::Float(15.0));
        assert_eq!(row[2], Value::Int(2));
    }

    #[test]
    fn incremental_matches_full() {
        let inc = setup(RefreshMode::Incremental);
        let full = setup(RefreshMode::Full);
        for db in [&inc, &full] {
            add(db, "Berlin", 10.0);
            add(db, "Paris", 3.0);
            db.refresh_view("orders_mv").unwrap();
            add(db, "Berlin", 2.5);
            add(db, "Rome", 1.0);
            db.table("orders")
                .unwrap()
                .delete_where(&Expr::col(0).eq(Expr::lit("Paris")))
                .unwrap();
            db.refresh_view("orders_mv").unwrap();
        }
        let mut a = inc.table("orders_mv").unwrap().scan();
        let mut b = full.table("orders_mv").unwrap().scan();
        a.sort_by_columns(&[0]);
        b.sort_by_columns(&[0]);
        assert_eq!(a.rows, b.rows);
        // and the incremental one really took the incremental path
        let stats = inc.view("orders_mv").unwrap().stats();
        assert_eq!(stats.incremental_refreshes, 2);
        assert_eq!(stats.full_refreshes, 0);
    }

    #[test]
    fn incremental_integer_sum_stays_int() {
        // an Int measure must stay Int-typed (and exact) through both
        // refresh paths, matching the executor's integer SUM
        let mk = |mode: RefreshMode| {
            let db = Database::new("dwh");
            let orders = RelSchema::of(&[("city", SqlType::Str), ("qty", SqlType::Int)]).shared();
            db.create_table(Table::new("orders", orders).with_change_capture());
            let mv_schema = RelSchema::of(&[
                ("city", SqlType::Str),
                ("total", SqlType::Int),
                ("cnt", SqlType::Int),
            ])
            .shared();
            db.create_table(
                Table::new("orders_mv", mv_schema)
                    .with_primary_key(&["city"])
                    .unwrap(),
            );
            let def = Plan::scan("orders").aggregate(
                vec![0],
                vec![
                    AggExpr::new(AggFunc::Sum, Expr::col(1), "total"),
                    AggExpr::count_star("cnt"),
                ],
            );
            db.create_view(MatView::new("orders_mv", "orders_mv", def, mode));
            db
        };
        let inc = mk(RefreshMode::Incremental);
        let full = mk(RefreshMode::Full);
        for db in [&inc, &full] {
            let t = db.table("orders").unwrap();
            t.insert(vec![
                vec![Value::str("Berlin"), Value::Int(3)],
                vec![Value::str("Berlin"), Value::Int(4)],
            ])
            .unwrap();
            db.refresh_view("orders_mv").unwrap();
            t.insert(vec![vec![Value::str("Berlin"), Value::Int(5)]])
                .unwrap();
            db.refresh_view("orders_mv").unwrap();
        }
        for db in [&inc, &full] {
            let row = db
                .table("orders_mv")
                .unwrap()
                .get_by_pk(&[Value::str("Berlin")])
                .unwrap();
            // strict type check: Int(12), not Float(12.0)
            assert!(matches!(row[1], Value::Int(12)), "got {:?}", row[1]);
            assert_eq!(row[2], Value::Int(3));
        }
        assert_eq!(
            inc.view("orders_mv").unwrap().stats().incremental_refreshes,
            2
        );
    }

    #[test]
    fn incremental_first_refresh_from_empty() {
        let db = setup(RefreshMode::Incremental);
        add(&db, "Berlin", 4.0);
        db.refresh_view("orders_mv").unwrap();
        let row = db
            .table("orders_mv")
            .unwrap()
            .get_by_pk(&[Value::str("Berlin")])
            .unwrap();
        assert_eq!(row[1], Value::Float(4.0));
    }

    /// Regression: an error mid-incremental-refresh used to *consume* the
    /// base table's drained change log and leave the storage table with a
    /// prefix of the deltas applied. The refresh-scoped transaction must
    /// restore both, so the failed refresh is retryable.
    #[test]
    fn failed_incremental_refresh_rolls_back() {
        use crate::schema::Column;
        let db = Database::new("dwh");
        // base allows NULL city; the storage table does not — applying a
        // NULL-keyed delta fails the storage schema check mid-loop
        let orders = RelSchema::of(&[("city", SqlType::Str), ("price", SqlType::Float)]).shared();
        db.create_table(Table::new("orders", orders).with_change_capture());
        let mv_schema = RelSchema::new(vec![
            Column::not_null("city", SqlType::Str),
            Column::new("revenue", SqlType::Float),
            Column::new("cnt", SqlType::Int),
        ])
        .shared();
        db.create_table(
            Table::new("orders_mv", mv_schema)
                .with_primary_key(&["city"])
                .unwrap(),
        );
        let def = Plan::scan("orders").aggregate(
            vec![0],
            vec![
                AggExpr::new(AggFunc::Sum, Expr::col(1), "revenue"),
                AggExpr::count_star("cnt"),
            ],
        );
        db.create_view(MatView::new(
            "orders_mv",
            "orders_mv",
            def,
            RefreshMode::Incremental,
        ));
        add(&db, "Berlin", 10.0);
        db.refresh_view("orders_mv").unwrap();
        let mv_before = db.table("orders_mv").unwrap().state_dump();

        // one good delta followed by one poisoned delta
        add(&db, "Paris", 2.0);
        db.table("orders")
            .unwrap()
            .insert(vec![vec![Value::Null, Value::Float(5.0)]])
            .unwrap();
        let pending = db.table("orders").unwrap().peek_changes();
        assert_eq!(pending.len(), 2);

        let err = db.refresh_view("orders_mv").unwrap_err();
        assert!(matches!(err, StoreError::Constraint(_)), "{err}");
        // storage unchanged: the good Paris delta did not leak through
        assert_eq!(db.table("orders_mv").unwrap().state_dump(), mv_before);
        // and the drained change log is back, so a later (fixed) refresh
        // still sees every delta
        assert_eq!(db.table("orders").unwrap().peek_changes(), pending);
    }

    #[test]
    fn group_vanishes_when_count_zero() {
        let db = setup(RefreshMode::Incremental);
        add(&db, "Berlin", 4.0);
        db.refresh_view("orders_mv").unwrap();
        db.table("orders")
            .unwrap()
            .delete_where(&Expr::col(0).eq(Expr::lit("Berlin")))
            .unwrap();
        db.refresh_view("orders_mv").unwrap();
        assert_eq!(db.table("orders_mv").unwrap().row_count(), 0);
    }
}

#[cfg(test)]
mod fallback_tests {
    use super::*;
    use crate::expr::Expr;
    use crate::query::plan::AggExpr;
    use crate::schema::RelSchema;
    use crate::table::Table;
    use crate::value::{SqlType, Value};

    /// A filtered definition is not eligible for incremental maintenance;
    /// the view must silently fall back to full refresh.
    #[test]
    fn ineligible_shape_falls_back_to_full() {
        let db = Database::new("f");
        let orders = RelSchema::of(&[("city", SqlType::Str), ("price", SqlType::Float)]).shared();
        db.create_table(Table::new("orders", orders).with_change_capture());
        let mv = RelSchema::of(&[("city", SqlType::Str), ("rev", SqlType::Float)]).shared();
        db.create_table(Table::new("mv", mv).with_primary_key(&["city"]).unwrap());
        let def = Plan::scan("orders")
            .filter(Expr::col(1).gt(Expr::lit(0.0)))
            .aggregate(
                vec![0],
                vec![AggExpr::new(AggFunc::Sum, Expr::col(1), "rev")],
            );
        let view = db.create_view(MatView::new("mv", "mv", def, RefreshMode::Incremental));
        db.table("orders")
            .unwrap()
            .insert(vec![vec![Value::str("a"), Value::Float(2.0)]])
            .unwrap();
        db.refresh_view("mv").unwrap();
        let stats = view.stats();
        assert_eq!(stats.full_refreshes, 1);
        assert_eq!(stats.incremental_refreshes, 0);
        assert_eq!(db.table("mv").unwrap().row_count(), 1);
    }

    /// MIN/MAX aggregates cannot be maintained from deltas either.
    #[test]
    fn min_max_not_incrementally_maintained() {
        let db = Database::new("g");
        let orders = RelSchema::of(&[("city", SqlType::Str), ("price", SqlType::Float)]).shared();
        db.create_table(Table::new("orders", orders).with_change_capture());
        let mv = RelSchema::of(&[("city", SqlType::Str), ("mx", SqlType::Float)]).shared();
        db.create_table(Table::new("mv", mv).with_primary_key(&["city"]).unwrap());
        let def = Plan::scan("orders").aggregate(
            vec![0],
            vec![AggExpr::new(AggFunc::Max, Expr::col(1), "mx")],
        );
        let view = db.create_view(MatView::new("mv", "mv", def, RefreshMode::Incremental));
        db.table("orders")
            .unwrap()
            .insert(vec![vec![Value::str("a"), Value::Float(2.0)]])
            .unwrap();
        db.refresh_view("mv").unwrap();
        assert_eq!(view.stats().full_refreshes, 1);
    }
}
