//! Typed scalar values and SQL-ish data types.
//!
//! `Value` is the unit of data everywhere in the store: rows are vectors of
//! values, expressions evaluate to values, index keys are tuples of values.
//! The type system is intentionally small — exactly what the DIPBench
//! schemas need (integers, decimals stored as `f64`, strings, booleans and
//! dates) — but total orderings and hashing are defined carefully so that
//! values can serve as join and index keys.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The SQL-level type of a column or expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlType {
    Bool,
    Int,
    Float,
    Str,
    /// Days since 1970-01-01 (proleptic Gregorian).
    Date,
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SqlType::Bool => "BOOLEAN",
            SqlType::Int => "BIGINT",
            SqlType::Float => "DOUBLE",
            SqlType::Str => "VARCHAR",
            SqlType::Date => "DATE",
        };
        f.write_str(s)
    }
}

/// A dynamically typed scalar value.
///
/// `Null` belongs to every type. Comparison follows a *total* order so that
/// values can be sorted and used as B-tree keys: `Null` sorts first, then
/// booleans, integers/floats (numerically, cross-type), strings and dates.
///
/// Strings are shared (`Arc<str>`): cloning a value — and therefore a row,
/// an index key tuple, a hash-join build entry or a captured change — bumps
/// a reference count instead of copying the bytes. Equality, ordering and
/// hashing all go through the underlying `str`, so the representation is
/// invisible to join and index semantics.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(Arc<str>),
    Date(i32),
}

impl Value {
    /// Construct a string value from anything string-like. This is the one
    /// place string bytes are copied into a shared allocation; every later
    /// clone of the value is a reference-count bump.
    pub fn str(s: impl Into<Arc<str>>) -> Value {
        crate::alloc::count_str_new();
        Value::Str(s.into())
    }

    /// Borrow the string contents, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The runtime type of this value, or `None` for `Null`.
    pub fn sql_type(&self) -> Option<SqlType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(SqlType::Bool),
            Value::Int(_) => Some(SqlType::Int),
            Value::Float(_) => Some(SqlType::Float),
            Value::Str(_) => Some(SqlType::Str),
            Value::Date(_) => Some(SqlType::Date),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view used by arithmetic and cross-type comparison.
    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view (floats are truncated, numeric strings parsed).
    pub fn to_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            Value::Bool(b) => Some(*b as i64),
            Value::Str(s) => s.trim().parse().ok(),
            Value::Date(d) => Some(*d as i64),
            Value::Null => None,
        }
    }

    /// Float view (integers widened, numeric strings parsed).
    pub fn to_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::Str(s) => s.trim().parse().ok(),
            Value::Null => None,
            _ => None,
        }
    }

    /// Truthiness used by predicate evaluation; `Null` is not true.
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Render the value the way the report writers print it.
    pub fn render(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    format!("{f:.1}")
                } else {
                    format!("{f}")
                }
            }
            Value::Str(s) => s.to_string(),
            Value::Date(d) => render_date(*d),
        }
    }

    /// Byte length of [`Value::render`]'s output, computed without
    /// allocating the string — wire-size accounting runs this once per
    /// value on every remote load/query, so it must not churn the heap.
    pub fn rendered_len(&self) -> usize {
        match self {
            Value::Null => 4,
            Value::Bool(b) => {
                if *b {
                    4
                } else {
                    5
                }
            }
            Value::Int(i) => int_digits(*i),
            Value::Float(f) => {
                let mut w = LenCounter(0);
                use std::fmt::Write;
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    let _ = write!(w, "{f:.1}");
                } else {
                    let _ = write!(w, "{f}");
                }
                w.0
            }
            Value::Str(s) => s.len(),
            Value::Date(d) => {
                let (y, m, d) = civil_from_days(*d);
                let mut w = LenCounter(0);
                use std::fmt::Write;
                let _ = write!(w, "{y:04}-{m:02}-{d:02}");
                w.0
            }
        }
    }

    /// SQL-style three-valued equality: `Null` compared to anything is not
    /// equal (returns `None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other) == Ordering::Equal)
    }

    /// Total comparison used for sorting and index keys.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
                _ => rank(a).cmp(&rank(b)),
            },
        }
    }
}

/// Cross-type rank for the total order when values are not comparable
/// numerically (e.g. a string vs. a date).
fn rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) | Value::Float(_) => 2,
        Value::Str(_) => 3,
        Value::Date(_) => 4,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and floats that compare equal must hash equally.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                // hash the str contents, not the Arc pointer, so equal
                // strings hash equally across distinct allocations
                (**s).hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}
impl From<Arc<str>> for Value {
    fn from(v: Arc<str>) -> Self {
        Value::Str(v)
    }
}

/// Days-since-epoch to `YYYY-MM-DD`, civil calendar.
/// Byte-counting sink for [`Value::rendered_len`]: formats into nothing.
struct LenCounter(usize);

impl std::fmt::Write for LenCounter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.0 += s.len();
        Ok(())
    }
}

/// Decimal digit count of `i` including a leading `-` sign.
fn int_digits(i: i64) -> usize {
    let mut n = i.unsigned_abs();
    let mut len = if i < 0 { 2usize } else { 1 };
    while n >= 10 {
        n /= 10;
        len += 1;
    }
    len
}

pub fn render_date(days: i32) -> String {
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// `YYYY-MM-DD` to days-since-epoch; returns `None` on malformed input.
pub fn parse_date(s: &str) -> Option<i32> {
    let mut it = s.split('-');
    let y: i32 = it.next()?.parse().ok()?;
    let m: u32 = it.next()?.parse().ok()?;
    let d: u32 = it.next()?.parse().ok()?;
    if it.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(days_from_civil(y, m, d))
}

/// Howard Hinnant's `days_from_civil` algorithm.
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u32;
    let mp = (m + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe as i32 - 719_468
}

/// Inverse of [`days_from_civil`].
pub fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u32;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365;
    let y = yoe as i32 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Calendar field extraction used by the DWH time dimension functions.
pub fn date_parts(days: i32) -> (i32, u32, u32) {
    civil_from_days(days)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn null_sorts_first() {
        let mut vs = [Value::Int(1), Value::Null, Value::str("a")];
        vs.sort();
        assert!(vs[0].is_null());
    }

    #[test]
    fn cross_type_numeric_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(h(&Value::Int(3)), h(&Value::Float(3.0)));
        assert!(Value::Int(2) < Value::Float(2.5));
    }

    #[test]
    fn sql_eq_is_three_valued() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn date_roundtrip() {
        for &(y, m, d) in &[(1970, 1, 1), (2000, 2, 29), (2008, 4, 12), (1969, 12, 31)] {
            let days = days_from_civil(y, m, d);
            assert_eq!(civil_from_days(days), (y, m, d));
        }
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(parse_date("2008-04-07"), Some(days_from_civil(2008, 4, 7)));
        assert_eq!(render_date(days_from_civil(2008, 4, 7)), "2008-04-07");
        assert_eq!(parse_date("2008-13-01"), None);
    }

    #[test]
    fn to_int_and_float_views() {
        assert_eq!(Value::str(" 42 ").to_int(), Some(42));
        assert_eq!(Value::Float(2.9).to_int(), Some(2));
        assert_eq!(Value::Int(2).to_float(), Some(2.0));
        assert_eq!(Value::Null.to_int(), None);
    }

    #[test]
    fn render_formats() {
        assert_eq!(Value::Float(2.0).render(), "2.0");
        assert_eq!(Value::Int(7).render(), "7");
        assert_eq!(Value::Null.render(), "NULL");
    }

    #[test]
    fn rendered_len_matches_render() {
        let cases = [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(7),
            Value::Int(-7),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::Float(2.0),
            Value::Float(-0.125),
            Value::Float(1e300),
            Value::Float(3.125e15),
            Value::str(""),
            Value::str("Straße 12"),
            Value::Date(0),
            Value::Date(19000),
            Value::Date(-140000),
        ];
        for v in cases {
            assert_eq!(v.rendered_len(), v.render().len(), "value {v:?}");
        }
    }

    #[test]
    fn string_equality_across_representations() {
        // the same text arriving as &str, String, or a shared Arc<str>
        // must compare, order and hash identically
        let a = Value::str("berlin");
        let b = Value::str(String::from("berlin"));
        let c = Value::from(std::sync::Arc::<str>::from("berlin"));
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(h(&a), h(&b));
        assert_eq!(h(&b), h(&c));
        assert_eq!(a.total_cmp(&b), Ordering::Equal);
        assert!(Value::str("a") < Value::str(String::from("b")));
        assert_eq!(a.as_str(), Some("berlin"));
        assert_eq!(Value::Int(1).as_str(), None);
    }

    #[test]
    fn string_clone_shares_allocation() {
        let a = Value::str("shared-bytes");
        let b = a.clone();
        match (&a, &b) {
            (Value::Str(x), Value::Str(y)) => {
                assert!(std::sync::Arc::ptr_eq(x, y), "clone must not copy bytes");
            }
            _ => unreachable!(),
        }
    }
}
