//! Logical query plans.
//!
//! Plans are small trees built programmatically (there is no SQL parser —
//! the benchmark's processes are defined as plans directly, which matches
//! the paper's platform-independent process descriptions). A plan computes
//! its output schema against a database, is optionally rewritten by the
//! [`crate::query::planner`], and is executed by [`crate::query::exec`].

use crate::catalog::Database;
use crate::error::{StoreError, StoreResult};
use crate::expr::Expr;
use crate::row::Relation;
use crate::schema::{Column, RelSchema, SchemaRef};
use crate::value::SqlType;

/// Join flavours supported by the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    /// Keep unmatched left rows, padding right columns with NULL.
    Left,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

/// One aggregate output: `func(input)` named `name`. `input = None` means
/// `COUNT(*)`.
#[derive(Debug, Clone)]
pub struct AggExpr {
    pub func: AggFunc,
    pub input: Option<Expr>,
    pub name: String,
}

impl AggExpr {
    pub fn count_star(name: impl Into<String>) -> AggExpr {
        AggExpr {
            func: AggFunc::Count,
            input: None,
            name: name.into(),
        }
    }
    pub fn new(func: AggFunc, input: Expr, name: impl Into<String>) -> AggExpr {
        AggExpr {
            func,
            input: Some(input),
            name: name.into(),
        }
    }

    fn out_type(&self, input: &RelSchema) -> SqlType {
        // Bare column references take the input column's type; anything
        // computed falls back to Float (we cannot type-infer arbitrary
        // expressions, and Float holds both).
        let col_type = || match self.input {
            Some(Expr::Col(i)) if i < input.len() => Some(input.column(i).ty),
            _ => None,
        };
        match self.func {
            AggFunc::Count => SqlType::Int,
            AggFunc::Avg => SqlType::Float,
            AggFunc::Sum => match col_type() {
                Some(SqlType::Int) => SqlType::Int,
                _ => SqlType::Float,
            },
            AggFunc::Min | AggFunc::Max => col_type().unwrap_or(SqlType::Float),
        }
    }
}

/// A projection output column: expression plus declared output column.
#[derive(Debug, Clone)]
pub struct ProjExpr {
    pub expr: Expr,
    pub column: Column,
}

impl ProjExpr {
    pub fn new(expr: Expr, name: impl Into<String>, ty: SqlType) -> ProjExpr {
        ProjExpr {
            expr,
            column: Column::new(name, ty),
        }
    }

    /// Pass a column of `schema` through unchanged (possibly renamed).
    pub fn passthrough(
        schema: &RelSchema,
        col: &str,
        rename: Option<&str>,
    ) -> StoreResult<ProjExpr> {
        let idx = schema.index_of(col)?;
        let mut column = schema.column(idx).clone();
        if let Some(r) = rename {
            column.name = r.to_string();
        }
        Ok(ProjExpr {
            expr: Expr::Col(idx),
            column,
        })
    }
}

/// A logical plan node.
#[derive(Debug, Clone)]
pub enum Plan {
    /// Base-table access. `predicate`/`projection` are filled in by the
    /// optimizer (pushdown); hand-written plans normally leave them empty.
    Scan {
        table: String,
        predicate: Option<Expr>,
        projection: Option<Vec<usize>>,
    },
    /// Literal input relation.
    Values(Relation),
    Filter {
        input: Box<Plan>,
        predicate: Expr,
    },
    Project {
        input: Box<Plan>,
        exprs: Vec<ProjExpr>,
    },
    HashJoin {
        left: Box<Plan>,
        right: Box<Plan>,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        kind: JoinKind,
    },
    /// Index-nested-loop join produced by the planner when the inner side
    /// is a base-table scan with an index exactly covering its join keys.
    /// The probe side streams; the inner side is never materialized.
    IndexJoin {
        probe: Box<Plan>,
        /// Inner base table (looked up per probe row through its index).
        table: String,
        /// Join key columns of the probe side (positions in probe output).
        probe_keys: Vec<usize>,
        /// Matching key columns in the *base* table (scan projection
        /// already applied by the planner).
        inner_keys: Vec<usize>,
        /// Residual predicate over base-table rows (from the folded scan).
        predicate: Option<Expr>,
        /// Output projection of the inner side (from the folded scan).
        projection: Option<Vec<usize>>,
        kind: JoinKind,
        /// Whether the probe side was the left side of the original join
        /// (controls output column order).
        probe_is_left: bool,
    },
    /// Bag union of same-arity inputs.
    UnionAll(Vec<Plan>),
    /// Set union; `key = None` deduplicates whole rows, `Some(cols)`
    /// deduplicates on the given key columns keeping the first row seen —
    /// the paper's `UNION_DISTINCT, Ordkey` etc. (P03, P09).
    UnionDistinct {
        inputs: Vec<Plan>,
        key: Option<Vec<usize>>,
    },
    Aggregate {
        input: Box<Plan>,
        group_by: Vec<usize>,
        aggs: Vec<AggExpr>,
    },
    Sort {
        input: Box<Plan>,
        keys: Vec<usize>,
    },
    Limit {
        input: Box<Plan>,
        n: usize,
    },
    /// Bounded partial sort produced by the planner for `Limit(Sort(x))`:
    /// keeps only the first `n` rows of the sorted order (stable — ties
    /// preserve input order), using a size-`n` heap instead of sorting
    /// everything.
    TopK {
        input: Box<Plan>,
        keys: Vec<usize>,
        n: usize,
    },
}

impl Plan {
    pub fn scan(table: impl Into<String>) -> Plan {
        Plan::Scan {
            table: table.into(),
            predicate: None,
            projection: None,
        }
    }

    pub fn filter(self, predicate: Expr) -> Plan {
        Plan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    pub fn project(self, exprs: Vec<ProjExpr>) -> Plan {
        Plan::Project {
            input: Box::new(self),
            exprs,
        }
    }

    pub fn hash_join(
        self,
        right: Plan,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        kind: JoinKind,
    ) -> Plan {
        Plan::HashJoin {
            left: Box::new(self),
            right: Box::new(right),
            left_keys,
            right_keys,
            kind,
        }
    }

    pub fn aggregate(self, group_by: Vec<usize>, aggs: Vec<AggExpr>) -> Plan {
        Plan::Aggregate {
            input: Box::new(self),
            group_by,
            aggs,
        }
    }

    pub fn sort(self, keys: Vec<usize>) -> Plan {
        Plan::Sort {
            input: Box::new(self),
            keys,
        }
    }

    pub fn limit(self, n: usize) -> Plan {
        Plan::Limit {
            input: Box::new(self),
            n,
        }
    }

    /// Execute this plan against `db` with the process-global default
    /// [`ExecMode`](crate::query::ExecMode) — the convenience form of
    /// [`execute`](crate::query::execute).
    pub fn run(&self, db: &Database) -> StoreResult<crate::row::Relation> {
        crate::query::execute(self, db, crate::query::default_mode())
    }

    /// Compute the output schema against `db`.
    pub fn schema(&self, db: &Database) -> StoreResult<SchemaRef> {
        match self {
            Plan::Scan {
                table, projection, ..
            } => {
                let t = db.table(table)?;
                Ok(match projection {
                    Some(p) => t.schema.project(p).shared(),
                    None => t.schema.clone(),
                })
            }
            Plan::Values(rel) => Ok(rel.schema.clone()),
            Plan::Filter { input, .. } => input.schema(db),
            Plan::Project { exprs, .. } => {
                Ok(RelSchema::new(exprs.iter().map(|p| p.column.clone()).collect()).shared())
            }
            Plan::HashJoin {
                left, right, kind, ..
            } => {
                let l = left.schema(db)?;
                let mut r = (*right.schema(db)?).clone();
                if *kind == JoinKind::Left {
                    // right side becomes nullable under LEFT JOIN
                    r = RelSchema::new(
                        r.columns()
                            .iter()
                            .map(|c| Column::new(c.name.clone(), c.ty))
                            .collect(),
                    );
                }
                Ok(l.concat(&r).shared())
            }
            Plan::IndexJoin {
                probe,
                table,
                projection,
                kind,
                probe_is_left,
                ..
            } => {
                let p = probe.schema(db)?;
                let t = db.table(table)?;
                let mut inner = match projection {
                    Some(cols) => t.schema.project(cols),
                    None => (*t.schema).clone(),
                };
                if *kind == JoinKind::Left {
                    // inner side becomes nullable under LEFT JOIN
                    inner = RelSchema::new(
                        inner
                            .columns()
                            .iter()
                            .map(|c| Column::new(c.name.clone(), c.ty))
                            .collect(),
                    );
                }
                Ok(if *probe_is_left {
                    p.concat(&inner).shared()
                } else {
                    inner.concat(&p).shared()
                })
            }
            Plan::UnionAll(inputs) | Plan::UnionDistinct { inputs, .. } => {
                let first = inputs
                    .first()
                    .ok_or_else(|| StoreError::Invalid("empty union".into()))?;
                first.schema(db)
            }
            Plan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let in_schema = input.schema(db)?;
                let mut cols: Vec<Column> = group_by
                    .iter()
                    .map(|&i| in_schema.column(i).clone())
                    .collect();
                for a in aggs {
                    cols.push(Column::new(a.name.clone(), a.out_type(&in_schema)));
                }
                Ok(RelSchema::new(cols).shared())
            }
            Plan::Sort { input, .. } | Plan::Limit { input, .. } | Plan::TopK { input, .. } => {
                input.schema(db)
            }
        }
    }

    /// Rough output-cardinality estimate for join-side selection.
    pub fn estimate_rows(&self, db: &Database) -> usize {
        match self {
            Plan::Scan {
                table, predicate, ..
            } => {
                let n = db.table(table).map(|t| t.row_count()).unwrap_or(0);
                if predicate.is_some() {
                    // classic 1/3 selectivity guess
                    (n / 3).max(1)
                } else {
                    n
                }
            }
            Plan::Values(rel) => rel.len(),
            Plan::Filter { input, .. } => (input.estimate_rows(db) / 3).max(1),
            Plan::Project { input, .. } => input.estimate_rows(db),
            Plan::HashJoin { left, right, .. } => {
                left.estimate_rows(db).max(right.estimate_rows(db))
            }
            Plan::IndexJoin { probe, table, .. } => {
                let inner = db.table(table).map(|t| t.row_count()).unwrap_or(0);
                probe.estimate_rows(db).max(inner)
            }
            Plan::UnionAll(inputs) | Plan::UnionDistinct { inputs, .. } => {
                inputs.iter().map(|i| i.estimate_rows(db)).sum()
            }
            Plan::Aggregate {
                input, group_by, ..
            } => {
                if group_by.is_empty() {
                    1
                } else {
                    (input.estimate_rows(db) / 2).max(1)
                }
            }
            Plan::Sort { input, .. } => input.estimate_rows(db),
            Plan::Limit { input, n } | Plan::TopK { input, n, .. } => {
                input.estimate_rows(db).min(*n)
            }
        }
    }

    /// Pretty-print the plan tree (EXPLAIN).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            Plan::Scan {
                table,
                predicate,
                projection,
            } => {
                out.push_str(&format!("{pad}Scan {table}"));
                if let Some(p) = predicate {
                    out.push_str(&format!(" pred={p:?}"));
                }
                if let Some(pr) = projection {
                    out.push_str(&format!(" proj={pr:?}"));
                }
                out.push('\n');
            }
            Plan::Values(rel) => out.push_str(&format!("{pad}Values [{} rows]\n", rel.len())),
            Plan::Filter { input, predicate } => {
                out.push_str(&format!("{pad}Filter {predicate:?}\n"));
                input.explain_into(out, depth + 1);
            }
            Plan::Project { input, exprs } => {
                let names: Vec<&str> = exprs.iter().map(|e| e.column.name.as_str()).collect();
                out.push_str(&format!("{pad}Project {names:?}\n"));
                input.explain_into(out, depth + 1);
            }
            Plan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                kind,
            } => {
                out.push_str(&format!(
                    "{pad}HashJoin {kind:?} on {left_keys:?}={right_keys:?}\n"
                ));
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            Plan::UnionAll(inputs) => {
                out.push_str(&format!("{pad}UnionAll\n"));
                for i in inputs {
                    i.explain_into(out, depth + 1);
                }
            }
            Plan::UnionDistinct { inputs, key } => {
                out.push_str(&format!("{pad}UnionDistinct key={key:?}\n"));
                for i in inputs {
                    i.explain_into(out, depth + 1);
                }
            }
            Plan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let names: Vec<&str> = aggs.iter().map(|a| a.name.as_str()).collect();
                out.push_str(&format!("{pad}Aggregate by {group_by:?} -> {names:?}\n"));
                input.explain_into(out, depth + 1);
            }
            Plan::Sort { input, keys } => {
                out.push_str(&format!("{pad}Sort {keys:?}\n"));
                input.explain_into(out, depth + 1);
            }
            Plan::Limit { input, n } => {
                out.push_str(&format!("{pad}Limit {n}\n"));
                input.explain_into(out, depth + 1);
            }
            Plan::IndexJoin {
                probe,
                table,
                probe_keys,
                inner_keys,
                predicate,
                projection,
                kind,
                probe_is_left,
            } => {
                out.push_str(&format!(
                    "{pad}IndexJoin {kind:?} {table} on probe{probe_keys:?}=inner{inner_keys:?}"
                ));
                if let Some(p) = predicate {
                    out.push_str(&format!(" pred={p:?}"));
                }
                if let Some(pr) = projection {
                    out.push_str(&format!(" proj={pr:?}"));
                }
                if !probe_is_left {
                    out.push_str(" (probe=right)");
                }
                out.push('\n');
                probe.explain_into(out, depth + 1);
            }
            Plan::TopK { input, keys, n } => {
                out.push_str(&format!("{pad}TopK {n} by {keys:?}\n"));
                input.explain_into(out, depth + 1);
            }
        }
    }
}
