//! Plan execution.
//!
//! Three executors share this module (selected by [`ExecMode`]):
//!
//! * **Streaming**: plans run as a single push-based pipeline. Each node
//!   pushes [`RowView`]s into its consumer's sink, so
//!   `Scan→Filter→Project` chains fuse into one pass over the base table,
//!   joins emit their two halves without concatenating them, and a consumer
//!   returning `false` terminates the producers early (`LIMIT` stops the
//!   scan underneath it). Only pipeline breakers (sort, aggregate, the
//!   build side of a hash join) materialize rows.
//! * **Vectorized** (`query::batch`): the same optimized plans run
//!   batch-at-a-time over columnar [`super::batch::Chunk`]s of ~1024 rows —
//!   the set-oriented path the heavy E2 refreshes compile to.
//! * **Oracle** ([`run`]): every node materializes a full [`Relation`]
//!   from the *unoptimized* plan. It is the semantics reference — the
//!   ablation switch for the FedDBMS experiments and the oracle for the
//!   executor property tests.
//!
//! All three paths share [`AggState`], so aggregate semantics (exact-`i64`
//! SUM with overflow fallback, compensated float summation, NULL handling,
//! first-seen group order) are identical by construction.
//!
//! Per-node output row counts are published to `dip-trace` as
//! `relstore.rows_out.<op>` counters; the vectorized path additionally
//! publishes `relstore.batch.chunks.<op>` / `relstore.batch.rows.<op>`
//! (no-ops when tracing is disabled).

use crate::catalog::Database;
use crate::error::{StoreError, StoreResult};
use crate::expr::RowAccess;
use crate::index::key_of;
use crate::query::hashkey::{combine, hash_value, KeyIndex, KEY_SEED};
use crate::query::plan::{AggFunc, JoinKind, Plan};
use crate::row::{sort_rows_by_columns, Relation, Row};
use crate::value::Value;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicU8, Ordering};

/// Which executor runs a plan.
///
/// Non-exhaustive: callers must treat unknown future modes conservatively
/// (match with a `_` arm) so adding a strategy is not a breaking change.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// The naive materializing interpreter over the unoptimized plan —
    /// the semantics oracle (the old `optimize: false` ablation path).
    Oracle,
    /// Optimized plan through the push-based streaming executor.
    Streaming,
    /// Optimized plan through the columnar batch executor
    /// ([`super::batch`]); plan shapes it cannot run fall back to
    /// streaming.
    Vectorized,
    /// Let the planner pick: vectorized for plans containing a join —
    /// the batch path's late-materializing gather columns forward the
    /// probe side of a join chain as shared `u32` index vectors, which
    /// beats even the streaming executor's borrowed row views on the
    /// deep E2 denormalization chains. Join-free plans (point scans,
    /// small refresh aggregates, distinct unions) stay streaming, where
    /// per-chunk setup cost is not amortized.
    #[default]
    Auto,
}

impl ExecMode {
    /// Every selectable mode, in CLI/usage order.
    pub const ALL: [ExecMode; 4] = [
        ExecMode::Auto,
        ExecMode::Streaming,
        ExecMode::Vectorized,
        ExecMode::Oracle,
    ];

    /// Parse a CLI token (`auto|streaming|vectorized|oracle`).
    pub fn parse(s: &str) -> Option<ExecMode> {
        match s {
            "auto" => Some(ExecMode::Auto),
            "streaming" => Some(ExecMode::Streaming),
            "vectorized" => Some(ExecMode::Vectorized),
            "oracle" => Some(ExecMode::Oracle),
            _ => None,
        }
    }

    /// Stable lowercase label (inverse of [`ExecMode::parse`]).
    pub fn label(self) -> &'static str {
        match self {
            ExecMode::Oracle => "oracle",
            ExecMode::Streaming => "streaming",
            ExecMode::Vectorized => "vectorized",
            _ => "auto",
        }
    }
}

/// Process-global default mode used by [`Plan::run`] and engine call sites
/// that don't thread an explicit mode (set once by `dipbench --exec-mode`).
static DEFAULT_MODE: AtomicU8 = AtomicU8::new(MODE_AUTO);

const MODE_ORACLE: u8 = 0;
const MODE_STREAMING: u8 = 1;
const MODE_VECTORIZED: u8 = 2;
const MODE_AUTO: u8 = 3;

/// Set the process-global default [`ExecMode`].
pub fn set_default_mode(mode: ExecMode) {
    let v = match mode {
        ExecMode::Oracle => MODE_ORACLE,
        ExecMode::Streaming => MODE_STREAMING,
        ExecMode::Vectorized => MODE_VECTORIZED,
        _ => MODE_AUTO,
    };
    DEFAULT_MODE.store(v, Ordering::Relaxed);
}

/// The process-global default [`ExecMode`] (`Auto` unless overridden).
pub fn default_mode() -> ExecMode {
    match DEFAULT_MODE.load(Ordering::Relaxed) {
        MODE_ORACLE => ExecMode::Oracle,
        MODE_STREAMING => ExecMode::Streaming,
        MODE_VECTORIZED => ExecMode::Vectorized,
        _ => ExecMode::Auto,
    }
}

/// Execute `plan` against `db` with the given [`ExecMode`] — the single
/// query entry point ([`Plan::run`] is the convenience form using the
/// process-global default mode).
pub fn execute(plan: &Plan, db: &Database, mode: ExecMode) -> StoreResult<Relation> {
    match mode {
        ExecMode::Oracle => run(plan, db),
        ExecMode::Streaming => {
            let optimized = crate::query::planner::optimize(plan.clone(), db)?;
            materialize(&optimized, db)
        }
        ExecMode::Vectorized => {
            let optimized = crate::query::planner::optimize(plan.clone(), db)?;
            super::batch::materialize_chunked(&optimized, db)
        }
        _ => {
            let optimized = crate::query::planner::optimize(plan.clone(), db)?;
            run_auto(&optimized, db)
        }
    }
}

/// `ExecMode::Auto`: route by [`planner::batching_pays`] — joins and
/// estimated-large join-free aggregates/distinct unions go to the batch
/// executor, everything else streams.
///
/// A *root-level* union additionally routes per input: its inputs are
/// independent pipelines, so a join-bearing (or estimated-large) input
/// batches while a tiny join-free sibling streams, instead of the whole
/// union paying chunk setup because one branch qualifies. Unions nested
/// under other operators still run whole inside one executor — splitting
/// there would force a materialization barrier mid-pipeline.
fn run_auto(plan: &Plan, db: &Database) -> StoreResult<Relation> {
    use crate::query::planner::batching_pays;
    let route = |p: &Plan| -> StoreResult<Relation> {
        if batching_pays(p, db) {
            super::batch::materialize_chunked(p, db)
        } else {
            materialize(p, db)
        }
    };
    match plan {
        Plan::UnionAll(inputs) => {
            let schema = plan.schema(db)?;
            for i in inputs {
                let w = i.schema(db)?.len();
                if w != schema.len() {
                    return Err(StoreError::Invalid(format!(
                        "union arity mismatch: {w} vs {}",
                        schema.len()
                    )));
                }
            }
            let _span = dip_trace::span_cat(
                dip_trace::Layer::Relstore,
                plan_op(plan),
                dip_trace::Category::Processing,
            );
            let mut rows: Vec<Row> = Vec::new();
            for i in inputs {
                rows.extend(route(i)?.rows);
            }
            dip_trace::count(rows_counter(plan), rows.len() as u64);
            Ok(Relation::new(schema, rows))
        }
        Plan::UnionDistinct { inputs, key } => {
            let schema = plan.schema(db)?;
            let width = schema.len();
            for i in inputs {
                if i.schema(db)?.len() != width {
                    return Err(StoreError::Invalid("union arity mismatch".into()));
                }
            }
            let _span = dip_trace::span_cat(
                dip_trace::Layer::Relstore,
                plan_op(plan),
                dip_trace::Category::Processing,
            );
            // Central first-seen dedup over the per-input results — the
            // same key semantics as both executors' union-distinct arms.
            let all_cols: Vec<usize>;
            let kcols: &[usize] = match key {
                Some(cols) => cols,
                None => {
                    all_cols = (0..width).collect();
                    &all_cols
                }
            };
            let mut ix = KeyIndex::with_capacity(plan.estimate_rows(db));
            let mut seen: Vec<Row> = Vec::new();
            let mut rows: Vec<Row> = Vec::new();
            for i in inputs {
                for row in route(i)?.rows {
                    let mut h = KEY_SEED;
                    for &c in kcols {
                        h = combine(h, hash_value(row.get(c).unwrap_or(&Value::Null)));
                    }
                    let dup = ix.candidates(h).any(|cand| {
                        seen.get(cand as usize).is_some_and(|stored| {
                            kcols
                                .iter()
                                .zip(stored)
                                .all(|(&c, v)| row.get(c) == Some(v))
                        })
                    });
                    if dup {
                        continue;
                    }
                    ix.push(h);
                    seen.push(
                        kcols
                            .iter()
                            .map(|&c| row.get(c).cloned().unwrap_or(Value::Null))
                            .collect(),
                    );
                    rows.push(row);
                }
            }
            dip_trace::count(rows_counter(plan), rows.len() as u64);
            Ok(Relation::new(schema, rows))
        }
        _ => route(plan),
    }
}

/// Trace label of a plan node (one span per executed node).
pub(crate) fn plan_op(plan: &Plan) -> &'static str {
    match plan {
        Plan::Scan { .. } => "scan",
        Plan::Values(_) => "values",
        Plan::Filter { .. } => "filter",
        Plan::Project { .. } => "project",
        Plan::HashJoin { .. } => "hash_join",
        Plan::IndexJoin { .. } => "index_join",
        Plan::UnionAll(_) => "union_all",
        Plan::UnionDistinct { .. } => "union_distinct",
        Plan::Aggregate { .. } => "aggregate",
        Plan::Sort { .. } => "sort",
        Plan::Limit { .. } => "limit",
        Plan::TopK { .. } => "top_k",
    }
}

/// `dip-trace` counter name for a node's output row count.
pub(crate) fn rows_counter(plan: &Plan) -> &'static str {
    match plan {
        Plan::Scan { .. } => "relstore.rows_out.scan",
        Plan::Values(_) => "relstore.rows_out.values",
        Plan::Filter { .. } => "relstore.rows_out.filter",
        Plan::Project { .. } => "relstore.rows_out.project",
        Plan::HashJoin { .. } => "relstore.rows_out.hash_join",
        Plan::IndexJoin { .. } => "relstore.rows_out.index_join",
        Plan::UnionAll(_) => "relstore.rows_out.union_all",
        Plan::UnionDistinct { .. } => "relstore.rows_out.union_distinct",
        Plan::Aggregate { .. } => "relstore.rows_out.aggregate",
        Plan::Sort { .. } => "relstore.rows_out.sort",
        Plan::Limit { .. } => "relstore.rows_out.limit",
        Plan::TopK { .. } => "relstore.rows_out.top_k",
    }
}

// ---------------------------------------------------------------------
// Streaming executor
// ---------------------------------------------------------------------

/// A row flowing through the streaming pipeline.
///
/// `Pair` carries the two halves of a join emission separately — consumers
/// that only inspect columns (filters, projections, key extraction) never
/// pay for concatenating them; only a materializing consumer does, via
/// [`RowView::into_row`].
pub enum RowView<'a> {
    /// A borrowed contiguous row (base-table slot, literal relation, …).
    Slice(&'a [Value]),
    /// A join emission: left half ++ right half.
    Pair(&'a [Value], &'a [Value]),
    /// A deeper join emission: the concatenation of all parts, in order.
    /// Lets an N-way join chain thread a row through every level without
    /// materializing the accumulated prefix at each step.
    Parts(&'a [&'a [Value]]),
    /// A freshly computed row (projection, aggregate output, …).
    Owned(Row),
}

impl RowView<'_> {
    /// Materialize into an owned row (clones borrowed views).
    pub fn into_row(self) -> Row {
        match self {
            RowView::Slice(s) => s.to_vec(),
            RowView::Pair(a, b) => a.iter().chain(b.iter()).cloned().collect(),
            RowView::Parts(parts) => {
                let mut row = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
                for p in parts {
                    row.extend_from_slice(p);
                }
                row
            }
            RowView::Owned(r) => r,
        }
    }
}

impl RowAccess for RowView<'_> {
    fn value_at(&self, i: usize) -> Option<&Value> {
        match self {
            RowView::Slice(s) => s.get(i),
            RowView::Pair(a, b) => {
                if i < a.len() {
                    a.get(i)
                } else {
                    b.get(i - a.len())
                }
            }
            RowView::Parts(parts) => {
                let mut i = i;
                for p in *parts {
                    if i < p.len() {
                        return p.get(i);
                    }
                    i -= p.len();
                }
                None
            }
            RowView::Owned(r) => r.get(i),
        }
    }
}

/// Upper bound on the slices a join chain threads through [`RowView::Parts`]
/// before falling back to materialization (a 15-way join chain).
const MAX_JOIN_PARTS: usize = 16;

/// Decompose a probe-row view into contiguous slices in `buf`, returning
/// how many were written; `None` means the view has too many parts and the
/// caller must materialize instead.
fn view_parts<'a>(view: &'a RowView<'a>, buf: &mut [&'a [Value]; MAX_JOIN_PARTS]) -> Option<usize> {
    match view {
        RowView::Slice(s) => {
            buf[0] = s;
            Some(1)
        }
        RowView::Owned(r) => {
            buf[0] = r.as_slice();
            Some(1)
        }
        RowView::Pair(a, b) => {
            buf[0] = a;
            buf[1] = b;
            Some(2)
        }
        RowView::Parts(p) => {
            // leave one slot for the join side the caller appends
            if p.len() >= MAX_JOIN_PARTS {
                return None;
            }
            buf[..p.len()].copy_from_slice(p);
            Some(p.len())
        }
    }
}

/// Clone a view into an owned row without consuming it (the rare fallback
/// when a join chain outgrows [`MAX_JOIN_PARTS`]).
fn clone_row(view: &RowView<'_>) -> Row {
    match view {
        RowView::Slice(s) => s.to_vec(),
        RowView::Pair(a, b) => a.iter().chain(b.iter()).cloned().collect(),
        RowView::Parts(parts) => {
            let mut row = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
            for p in *parts {
                row.extend_from_slice(p);
            }
            row
        }
        RowView::Owned(r) => r.clone(),
    }
}

/// The value at logical column `i` of a row split across `parts`.
fn part_value<'a>(parts: &[&'a [Value]], mut i: usize) -> &'a Value {
    for p in parts {
        if i < p.len() {
            return &p[i];
        }
        i -= p.len();
    }
    panic!("join key column {i} past end of probe row");
}

/// The consumer side of a streaming operator: return `false` to stop the
/// producer (early termination), `true` to keep receiving rows.
type Sink<'s> = dyn FnMut(RowView<'_>) -> StoreResult<bool> + 's;

/// Run a plan through the streaming executor, collecting into a relation.
fn materialize(plan: &Plan, db: &Database) -> StoreResult<Relation> {
    let schema = plan.schema(db)?;
    let mut rows = Vec::new();
    stream(plan, db, &mut |r| {
        rows.push(r.into_row());
        Ok(true)
    })?;
    Ok(Relation::new(schema, rows))
}

/// Stream a node's output into `sink`. Returns `Ok(false)` iff `sink`
/// requested termination (a node exhausting its own budget — e.g. `Limit`
/// cutting off its input — still returns `Ok(true)` to its caller).
fn stream(plan: &Plan, db: &Database, sink: &mut Sink) -> StoreResult<bool> {
    let _span = dip_trace::span_cat(
        dip_trace::Layer::Relstore,
        plan_op(plan),
        dip_trace::Category::Processing,
    );
    let mut emitted: u64 = 0;
    let result = stream_node(plan, db, &mut |r| {
        emitted += 1;
        sink(r)
    });
    dip_trace::count(rows_counter(plan), emitted);
    result
}

fn stream_node(plan: &Plan, db: &Database, sink: &mut Sink) -> StoreResult<bool> {
    match plan {
        Plan::Scan {
            table,
            predicate,
            projection,
        } => {
            let t = db.table(table)?;
            match projection {
                None => t.stream_rows(predicate.as_ref(), &mut |row| sink(RowView::Slice(row))),
                Some(p) => t.stream_rows(predicate.as_ref(), &mut |row| {
                    let r: Row = p.iter().map(|&i| row[i].clone()).collect();
                    sink(RowView::Owned(r))
                }),
            }
        }
        Plan::Values(rel) => {
            for r in &rel.rows {
                if !sink(RowView::Slice(r))? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Plan::Filter { input, predicate } => stream(input, db, &mut |r| {
            if predicate.matches_on(&r)? {
                sink(r)
            } else {
                Ok(true)
            }
        }),
        Plan::Project { input, exprs } => stream(input, db, &mut |r| {
            let row: StoreResult<Row> = exprs.iter().map(|p| p.expr.eval_on(&r)).collect();
            sink(RowView::Owned(row?))
        }),
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            kind,
        } => {
            if left_keys.len() != right_keys.len() {
                return Err(StoreError::Invalid("join key arity mismatch".into()));
            }
            // Build on the estimated-smaller side; LEFT joins must build on
            // the right so unmatched left rows can be emitted while probing.
            let build_right =
                *kind == JoinKind::Left || right.estimate_rows(db) <= left.estimate_rows(db);
            let (build_plan, probe_plan, build_keys, probe_keys, probe_is_left) = if build_right {
                (&**right, &**left, right_keys, left_keys, true)
            } else {
                (&**left, &**right, left_keys, right_keys, false)
            };
            let build = materialize(build_plan, db)?;
            // Hash-first build table: keys are never materialized. Hashes
            // fold per key column; ids insert in descending order so each
            // chain yields candidates ascending — probe output reproduces
            // the HashMap-of-vectors probe × insertion order exactly.
            let mut table = KeyIndex::with_capacity(build.len());
            for i in (0..build.rows.len()).rev() {
                let Some(r) = build.rows.get(i) else { continue };
                let mut h = KEY_SEED;
                let mut isnull = false;
                for &c in build_keys {
                    let v = r.get(c).unwrap_or(&Value::Null);
                    h = combine(h, hash_value(v));
                    isnull |= v.is_null();
                }
                if isnull {
                    continue; // NULL keys never join
                }
                table.insert_at(h, i as u32);
            }
            let pad: Row = vec![Value::Null; build.schema.len()];
            let left_pad = *kind == JoinKind::Left && probe_is_left;
            stream(probe_plan, db, &mut |pr| {
                let scratch: Row;
                let mut parts: [&[Value]; MAX_JOIN_PARTS] = [&[]; MAX_JOIN_PARTS];
                let n = match view_parts(&pr, &mut parts) {
                    Some(n) => n,
                    None => {
                        scratch = clone_row(&pr);
                        parts[0] = scratch.as_slice();
                        1
                    }
                };
                // probe keys hash in place off the row view — no clone,
                // no per-row buffer
                let mut h = KEY_SEED;
                let mut isnull = false;
                for &c in probe_keys {
                    let v = part_value(&parts[..n], c);
                    h = combine(h, hash_value(v));
                    isnull |= v.is_null();
                }
                // the build side fills the hole; the probe prefix is set once
                // and stays valid across every match of this probe row
                let mut out: [&[Value]; MAX_JOIN_PARTS] = [&[]; MAX_JOIN_PARTS];
                let hole = if probe_is_left {
                    out[..n].copy_from_slice(&parts[..n]);
                    n
                } else {
                    out[1..=n].copy_from_slice(&parts[..n]);
                    0
                };
                let mut matched = false;
                if !isnull {
                    for cand in table.candidates(h) {
                        let Some(br) = build.rows.get(cand as usize) else {
                            continue;
                        };
                        let eq = probe_keys.iter().zip(build_keys).all(|(&pc, &bc)| {
                            br.get(bc)
                                .is_some_and(|bv| part_value(&parts[..n], pc) == bv)
                        });
                        if !eq {
                            continue;
                        }
                        matched = true;
                        out[hole] = br.as_slice();
                        if !sink(RowView::Parts(&out[..n + 1]))? {
                            return Ok(false);
                        }
                    }
                }
                if !matched && left_pad {
                    out[hole] = pad.as_slice();
                    return sink(RowView::Parts(&out[..n + 1]));
                }
                Ok(true)
            })
        }
        Plan::IndexJoin {
            probe,
            table,
            probe_keys,
            inner_keys,
            predicate,
            projection,
            kind,
            probe_is_left,
        } => {
            let t = db.table(table)?;
            let Some(session) = t.probe_on(inner_keys) else {
                // index dropped since planning: degrade to the equivalent
                // hash join rather than failing the query
                return stream_node(&index_join_equivalent(plan), db, sink);
            };
            let inner_width = match projection {
                Some(p) => p.len(),
                None => t.schema.len(),
            };
            let pad: Row = vec![Value::Null; inner_width];
            // the planner only selects LEFT index joins with probe = left
            let left_pad = *kind == JoinKind::Left && *probe_is_left;
            // one key buffer reused across all probe rows
            let mut key: Vec<Value> = Vec::with_capacity(probe_keys.len());
            stream(probe, db, &mut |pr| {
                let scratch: Row;
                let mut parts: [&[Value]; MAX_JOIN_PARTS] = [&[]; MAX_JOIN_PARTS];
                let n = match view_parts(&pr, &mut parts) {
                    Some(n) => n,
                    None => {
                        scratch = clone_row(&pr);
                        parts[0] = scratch.as_slice();
                        1
                    }
                };
                key.clear();
                key.extend(
                    probe_keys
                        .iter()
                        .map(|&c| part_value(&parts[..n], c).clone()),
                );
                // the inner side fills the hole; the probe prefix is set once
                // and stays valid across every match of this probe row
                let mut out: [&[Value]; MAX_JOIN_PARTS] = [&[]; MAX_JOIN_PARTS];
                let hole = if *probe_is_left {
                    out[..n].copy_from_slice(&parts[..n]);
                    n
                } else {
                    out[1..=n].copy_from_slice(&parts[..n]);
                    0
                };
                if key.iter().any(|v| v.is_null()) {
                    // NULL keys never join; LEFT probes still emit padded
                    return if left_pad {
                        out[hole] = pad.as_slice();
                        sink(RowView::Parts(&out[..n + 1]))
                    } else {
                        Ok(true)
                    };
                }
                let mut matched = false;
                let mut stopped = false;
                session.lookup_each(&key, &mut |ir| {
                    let keep = match predicate {
                        Some(p) => p.matches_on(ir)?,
                        None => true,
                    };
                    if !keep {
                        return Ok(true);
                    }
                    matched = true;
                    let projected: Row;
                    let is: &[Value] = match projection {
                        Some(p) => {
                            projected = p.iter().map(|&i| ir[i].clone()).collect();
                            projected.as_slice()
                        }
                        None => ir,
                    };
                    // per-emission copy of the prefix: `is` only lives for
                    // this match, so it can't go into the shared `out`
                    let mut emit: [&[Value]; MAX_JOIN_PARTS] = out;
                    emit[hole] = is;
                    if !sink(RowView::Parts(&emit[..n + 1]))? {
                        stopped = true;
                        return Ok(false);
                    }
                    Ok(true)
                })?;
                if stopped {
                    return Ok(false);
                }
                if !matched && left_pad {
                    out[hole] = pad.as_slice();
                    return sink(RowView::Parts(&out[..n + 1]));
                }
                Ok(true)
            })
        }
        Plan::UnionAll(inputs) => {
            let width = plan.schema(db)?.len();
            for i in inputs {
                let w = i.schema(db)?.len();
                if w != width {
                    return Err(StoreError::Invalid(format!(
                        "union arity mismatch: {w} vs {width}"
                    )));
                }
            }
            for i in inputs {
                if !stream(i, db, sink)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Plan::UnionDistinct { inputs, key } => {
            let width = plan.schema(db)?.len();
            for i in inputs {
                if i.schema(db)?.len() != width {
                    return Err(StoreError::Invalid("union arity mismatch".into()));
                }
            }
            // Hash-first dedup: the key hash folds straight off the row
            // view, candidates compare against the stored first occurrence,
            // and a key tuple is only cloned when it is genuinely new.
            let all_cols: Vec<usize>;
            let kcols: &[usize] = match key {
                Some(cols) => cols,
                None => {
                    all_cols = (0..width).collect();
                    &all_cols
                }
            };
            let mut ix = KeyIndex::with_capacity(0);
            let mut seen: Vec<Row> = Vec::new();
            for i in inputs {
                let keep_going = stream(i, db, &mut |r| {
                    let mut h = KEY_SEED;
                    for &c in kcols {
                        h = combine(h, hash_value(r.value_at(c).unwrap_or(&Value::Null)));
                    }
                    let dup = ix.candidates(h).any(|cand| {
                        seen.get(cand as usize).is_some_and(|stored| {
                            kcols
                                .iter()
                                .zip(stored)
                                .all(|(&c, v)| r.value_at(c) == Some(v))
                        })
                    });
                    if dup {
                        return Ok(true);
                    }
                    ix.push(h);
                    seen.push(
                        kcols
                            .iter()
                            .map(|&c| r.value_at(c).cloned().unwrap_or(Value::Null))
                            .collect(),
                    );
                    sink(r)
                })?;
                if !keep_going {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            // Group lookup is hash-first: the group-key hash folds off the
            // row view, candidates compare against the stored first-seen
            // key, and a key tuple is only cloned when it opens a group.
            let mut ix = KeyIndex::with_capacity(0);
            let mut order: Vec<Row> = Vec::new();
            let mut states: Vec<Vec<AggState>> = Vec::new();
            stream(input, db, &mut |r| {
                let mut h = KEY_SEED;
                for &c in group_by {
                    h = combine(h, hash_value(r.value_at(c).unwrap_or(&Value::Null)));
                }
                let gid = ix.candidates(h).find(|&cand| {
                    order.get(cand as usize).is_some_and(|stored| {
                        group_by
                            .iter()
                            .zip(stored)
                            .all(|(&c, v)| r.value_at(c) == Some(v))
                    })
                });
                let g = match gid {
                    Some(g) => g as usize,
                    None => {
                        let g = ix.push(h) as usize;
                        order.push(
                            group_by
                                .iter()
                                .map(|&c| r.value_at(c).cloned().unwrap_or(Value::Null))
                                .collect(),
                        );
                        states.push(aggs.iter().map(|a| AggState::new(a.func)).collect());
                        g
                    }
                };
                let Some(sts) = states.get_mut(g) else {
                    return Ok(true);
                };
                for (st, a) in sts.iter_mut().zip(aggs) {
                    let v = match &a.input {
                        Some(e) => Some(e.eval_on(&r)?),
                        None => None,
                    };
                    st.update(v);
                }
                Ok(true)
            })?;
            // Global aggregate over zero rows still yields one row.
            if states.is_empty() && group_by.is_empty() {
                order.push(vec![]);
                states.push(aggs.iter().map(|a| AggState::new(a.func)).collect());
            }
            for (key, sts) in order.into_iter().zip(states) {
                let mut row = key;
                for st in sts {
                    row.push(st.finish());
                }
                if !sink(RowView::Owned(row))? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Plan::Sort { input, keys } => {
            let mut rows: Vec<Row> = Vec::new();
            stream(input, db, &mut |r| {
                rows.push(r.into_row());
                Ok(true)
            })?;
            sort_rows_by_columns(&mut rows, keys);
            for row in rows {
                if !sink(RowView::Owned(row))? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Plan::Limit { input, n } => {
            let mut remaining = *n;
            if remaining == 0 {
                return Ok(true);
            }
            let mut downstream_stop = false;
            stream(input, db, &mut |r| {
                if !sink(r)? {
                    downstream_stop = true;
                    return Ok(false);
                }
                remaining -= 1;
                Ok(remaining > 0)
            })?;
            Ok(!downstream_stop)
        }
        Plan::TopK { input, keys, n } => {
            let n = *n;
            if n == 0 {
                return Ok(true);
            }
            // Max-heap over (sort key, input sequence): the heap root is the
            // worst of the current best-n, so the survivors are exactly the
            // first n rows of the stable sorted order.
            let mut heap: BinaryHeap<TopKEntry> = BinaryHeap::with_capacity(n + 1);
            let mut seq = 0usize;
            stream(input, db, &mut |r| {
                let row = r.into_row();
                let entry = TopKEntry {
                    key: key_of(&row, keys),
                    seq,
                    row,
                };
                seq += 1;
                if heap.len() < n {
                    heap.push(entry);
                } else if entry < *heap.peek().expect("heap non-empty") {
                    heap.pop();
                    heap.push(entry);
                }
                Ok(true)
            })?;
            for e in heap.into_sorted_vec() {
                if !sink(RowView::Owned(e.row))? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
    }
}

/// One candidate of a bounded top-K: ordered by sort key, then by input
/// position so ties reproduce the stable sort exactly.
#[derive(PartialEq, Eq)]
pub(crate) struct TopKEntry {
    pub(crate) key: Vec<Value>,
    pub(crate) seq: usize,
    pub(crate) row: Row,
}

impl Ord for TopKEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key).then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for TopKEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Rewrite an [`Plan::IndexJoin`] back into the hash join it was derived
/// from — the executor's fallback when the covering index has vanished
/// between planning and execution, and the naive executor's semantics.
pub(crate) fn index_join_equivalent(plan: &Plan) -> Plan {
    let Plan::IndexJoin {
        probe,
        table,
        probe_keys,
        inner_keys,
        predicate,
        projection,
        kind,
        probe_is_left,
    } = plan
    else {
        unreachable!("index_join_equivalent on non-IndexJoin");
    };
    let scan = Plan::Scan {
        table: table.clone(),
        predicate: predicate.clone(),
        projection: projection.clone(),
    };
    // inner_keys are base-table positions; map them through the projection
    // to positions in the scan's output
    let scan_keys: Vec<usize> = match projection {
        Some(p) => inner_keys
            .iter()
            .map(|k| p.iter().position(|c| c == k).expect("projected join key"))
            .collect(),
        None => inner_keys.clone(),
    };
    if *probe_is_left {
        Plan::HashJoin {
            left: probe.clone(),
            right: Box::new(scan),
            left_keys: probe_keys.clone(),
            right_keys: scan_keys,
            kind: *kind,
        }
    } else {
        Plan::HashJoin {
            left: Box::new(scan),
            right: probe.clone(),
            left_keys: scan_keys,
            right_keys: probe_keys.clone(),
            kind: *kind,
        }
    }
}

// ---------------------------------------------------------------------
// Naive materializing executor (ablation reference)
// ---------------------------------------------------------------------

fn run(plan: &Plan, db: &Database) -> StoreResult<Relation> {
    let _span = dip_trace::span_cat(
        dip_trace::Layer::Relstore,
        plan_op(plan),
        dip_trace::Category::Processing,
    );
    match plan {
        Plan::Scan {
            table,
            predicate,
            projection,
        } => {
            let t = db.table(table)?;
            match predicate {
                Some(p) => t.scan_where(p, projection.as_deref()),
                None => match projection {
                    Some(proj) => {
                        let mut rows = Vec::with_capacity(t.row_count());
                        t.for_each(|r| {
                            rows.push(proj.iter().map(|&i| r[i].clone()).collect::<Row>());
                            Ok::<(), StoreError>(())
                        })?;
                        Ok(Relation::new(t.schema.project(proj).shared(), rows))
                    }
                    None => Ok(t.scan()),
                },
            }
        }
        Plan::Values(rel) => Ok(rel.clone()),
        Plan::Filter { input, predicate } => {
            let rel = run(input, db)?;
            let mut rows = Vec::new();
            for r in rel.rows {
                if predicate.matches(&r)? {
                    rows.push(r);
                }
            }
            Ok(Relation::new(rel.schema, rows))
        }
        Plan::Project { input, exprs } => {
            let rel = run(input, db)?;
            let schema = plan.schema(db)?;
            let mut rows = Vec::with_capacity(rel.rows.len());
            for r in &rel.rows {
                let row: StoreResult<Row> = exprs.iter().map(|p| p.expr.eval(r)).collect();
                rows.push(row?);
            }
            Ok(Relation::new(schema, rows))
        }
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            kind,
        } => {
            let l = run(left, db)?;
            let r = run(right, db)?;
            hash_join(db, plan, l, r, left_keys, right_keys, *kind)
        }
        Plan::IndexJoin { .. } => run(&index_join_equivalent(plan), db),
        Plan::UnionAll(inputs) => {
            let schema = plan.schema(db)?;
            let mut rows = Vec::new();
            for i in inputs {
                let rel = run(i, db)?;
                if rel.schema.len() != schema.len() {
                    return Err(StoreError::Invalid(format!(
                        "union arity mismatch: {} vs {}",
                        rel.schema.len(),
                        schema.len()
                    )));
                }
                rows.extend(rel.rows);
            }
            Ok(Relation::new(schema, rows))
        }
        Plan::UnionDistinct { inputs, key } => {
            let schema = plan.schema(db)?;
            let mut rows: Vec<Row> = Vec::new();
            match key {
                Some(cols) => {
                    let mut seen: HashSet<Vec<Value>> = HashSet::new();
                    for i in inputs {
                        let rel = run(i, db)?;
                        if rel.schema.len() != schema.len() {
                            return Err(StoreError::Invalid("union arity mismatch".into()));
                        }
                        for r in rel.rows {
                            if seen.insert(key_of(&r, cols)) {
                                rows.push(r);
                            }
                        }
                    }
                }
                None => {
                    let mut seen: HashSet<Row> = HashSet::new();
                    for i in inputs {
                        let rel = run(i, db)?;
                        if rel.schema.len() != schema.len() {
                            return Err(StoreError::Invalid("union arity mismatch".into()));
                        }
                        for r in rel.rows {
                            if seen.insert(r.clone()) {
                                rows.push(r);
                            }
                        }
                    }
                }
            }
            Ok(Relation::new(schema, rows))
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let rel = run(input, db)?;
            let schema = plan.schema(db)?;
            let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
            let mut order: Vec<Vec<Value>> = Vec::new();
            for r in &rel.rows {
                let key = key_of(r, group_by);
                let states = match groups.get_mut(&key) {
                    Some(s) => s,
                    None => {
                        order.push(key.clone());
                        groups
                            .entry(key.clone())
                            .or_insert_with(|| aggs.iter().map(|a| AggState::new(a.func)).collect())
                    }
                };
                for (st, a) in states.iter_mut().zip(aggs) {
                    let v = match &a.input {
                        Some(e) => Some(e.eval(r)?),
                        None => None,
                    };
                    st.update(v);
                }
            }
            // Global aggregate over zero rows still yields one row.
            if groups.is_empty() && group_by.is_empty() {
                order.push(vec![]);
                groups.insert(vec![], aggs.iter().map(|a| AggState::new(a.func)).collect());
            }
            let mut rows = Vec::with_capacity(order.len());
            for key in order {
                let states = groups.remove(&key).expect("group exists");
                let mut row = key;
                for st in states {
                    row.push(st.finish());
                }
                rows.push(row);
            }
            Ok(Relation::new(schema, rows))
        }
        Plan::Sort { input, keys } => {
            let mut rel = run(input, db)?;
            rel.sort_by_columns(keys);
            Ok(rel)
        }
        Plan::Limit { input, n } => {
            let mut rel = run(input, db)?;
            rel.rows.truncate(*n);
            Ok(rel)
        }
        Plan::TopK { input, keys, n } => {
            let mut rel = run(input, db)?;
            rel.sort_by_columns(keys);
            rel.rows.truncate(*n);
            Ok(rel)
        }
    }
}

fn hash_join(
    db: &Database,
    plan: &Plan,
    left: Relation,
    right: Relation,
    left_keys: &[usize],
    right_keys: &[usize],
    kind: JoinKind,
) -> StoreResult<Relation> {
    if left_keys.len() != right_keys.len() {
        return Err(StoreError::Invalid("join key arity mismatch".into()));
    }
    let schema = plan.schema(db)?;
    // Build on the smaller side for inner joins; LEFT joins must build on
    // the right so unmatched left rows can be emitted while probing.
    let build_right = kind == JoinKind::Left || right.len() <= left.len();
    let (build, probe, build_keys, probe_keys, probe_is_left) = if build_right {
        (&right, &left, right_keys, left_keys, true)
    } else {
        (&left, &right, left_keys, right_keys, false)
    };
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(build.len());
    for (i, r) in build.rows.iter().enumerate() {
        let key = key_of(r, build_keys);
        if key.iter().any(|v| v.is_null()) {
            continue; // NULL keys never join
        }
        table.entry(key).or_default().push(i);
    }
    let mut rows = Vec::new();
    for pr in &probe.rows {
        let key = key_of(pr, probe_keys);
        let matches = if key.iter().any(|v| v.is_null()) {
            None
        } else {
            table.get(&key)
        };
        match matches {
            Some(slots) => {
                for &s in slots {
                    let br = &build.rows[s];
                    let row: Row = if probe_is_left {
                        pr.iter().chain(br.iter()).cloned().collect()
                    } else {
                        br.iter().chain(pr.iter()).cloned().collect()
                    };
                    rows.push(row);
                }
            }
            None => {
                if kind == JoinKind::Left && probe_is_left {
                    let mut row: Row = pr.clone();
                    row.extend(std::iter::repeat_n(Value::Null, build.schema.len()));
                    rows.push(row);
                }
            }
        }
    }
    Ok(Relation::new(schema, rows))
}

/// Compensated (Kahan–Babuška/Neumaier) float accumulator. Every float
/// `SUM`/`AVG` in every executor routes through this one type, so the
/// summation error — and therefore the emitted bytes — no longer depend on
/// which operator ordering fed the aggregate. For inputs whose exact sum is
/// representable the result is also order-independent, which is what the
/// cross-mode/cross-worker byte-identity gates rely on.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Kahan {
    sum: f64,
    comp: f64,
}

impl Kahan {
    pub(crate) fn seeded(v: f64) -> Kahan {
        Kahan { sum: v, comp: 0.0 }
    }

    pub(crate) fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.comp += (self.sum - t) + x;
        } else {
            self.comp += (x - t) + self.sum;
        }
        self.sum = t;
    }

    pub(crate) fn value(&self) -> f64 {
        self.sum + self.comp
    }
}

/// Numeric accumulator for `SUM`/`AVG`: exact `i64` arithmetic while every
/// input is an integer, widening to compensated `f64` on the first
/// non-integer input or on overflow.
#[derive(Debug, Clone, Copy)]
enum NumAcc {
    Int(i64),
    Float(Kahan),
}

impl NumAcc {
    fn as_f64(self) -> f64 {
        match self {
            NumAcc::Int(i) => i as f64,
            NumAcc::Float(k) => k.value(),
        }
    }
}

/// Aggregate state shared by the oracle, streaming and vectorized
/// executors — one implementation so the three paths cannot drift.
#[derive(Debug)]
pub(crate) struct AggState {
    func: AggFunc,
    count: u64,
    sum: NumAcc,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    pub(crate) fn new(func: AggFunc) -> AggState {
        AggState {
            func,
            count: 0,
            sum: NumAcc::Int(0),
            min: None,
            max: None,
        }
    }

    pub(crate) fn update(&mut self, v: Option<Value>) {
        match self.func {
            AggFunc::Count => {
                // COUNT(*) counts rows; COUNT(expr) skips NULLs.
                match &v {
                    None => self.count += 1,
                    Some(x) if !x.is_null() => self.count += 1,
                    _ => {}
                }
            }
            AggFunc::Sum | AggFunc::Avg => {
                let Some(x) = v else { return };
                match &x {
                    Value::Int(i) => self.add_int(*i),
                    other => {
                        if let Some(f) = other.to_float() {
                            self.add_float(f);
                        }
                    }
                }
            }
            AggFunc::Min => {
                if let Some(x) = v {
                    if !x.is_null() && self.min.as_ref().is_none_or(|m| x < *m) {
                        self.min = Some(x);
                    }
                }
            }
            AggFunc::Max => {
                if let Some(x) = v {
                    if !x.is_null() && self.max.as_ref().is_none_or(|m| x > *m) {
                        self.max = Some(x);
                    }
                }
            }
        }
    }

    /// Count one row for `COUNT(*)` — the vectorized column loop's form.
    pub(crate) fn count_row(&mut self) {
        self.count += 1;
    }

    /// Count `n` rows at once — the batch executor's whole-chunk
    /// `COUNT(*)` / bitmap-popcount `COUNT(col)` form.
    pub(crate) fn count_n(&mut self, n: u64) {
        self.count += n;
    }

    /// Count one non-NULL input for `COUNT(expr)`.
    pub(crate) fn count_value(&mut self, v: &Value) {
        if !v.is_null() {
            self.count += 1;
        }
    }

    /// Add one integer to a `SUM`/`AVG` (exact while it fits in `i64`,
    /// compensated-float after overflow or a prior float input).
    pub(crate) fn add_int(&mut self, i: i64) {
        match &mut self.sum {
            NumAcc::Int(s) => {
                self.sum = match s.checked_add(i) {
                    Some(t) => NumAcc::Int(t),
                    None => {
                        let mut k = Kahan::seeded(*s as f64);
                        k.add(i as f64);
                        NumAcc::Float(k)
                    }
                };
            }
            NumAcc::Float(k) => k.add(i as f64),
        }
        self.count += 1;
    }

    /// Add one float to a `SUM`/`AVG` through the shared compensated
    /// accumulator (widening an integer prefix first).
    pub(crate) fn add_float(&mut self, f: f64) {
        match &mut self.sum {
            NumAcc::Int(s) => {
                let mut k = Kahan::seeded(*s as f64);
                k.add(f);
                self.sum = NumAcc::Float(k);
            }
            NumAcc::Float(k) => k.add(f),
        }
        self.count += 1;
    }

    /// `SUM`/`AVG` update by reference — the vectorized path's per-column
    /// loop form of [`AggState::update`]'s `Sum | Avg` arm.
    pub(crate) fn add_value(&mut self, v: &Value) {
        match v {
            Value::Int(i) => self.add_int(*i),
            other => {
                if let Some(f) = other.to_float() {
                    self.add_float(f);
                }
            }
        }
    }

    /// `MIN` update by reference (clones only when the value wins).
    pub(crate) fn min_value(&mut self, v: &Value) {
        if !v.is_null() && self.min.as_ref().is_none_or(|m| *v < *m) {
            self.min = Some(v.clone());
        }
    }

    /// `MAX` update by reference (clones only when the value wins).
    pub(crate) fn max_value(&mut self, v: &Value) {
        if !v.is_null() && self.max.as_ref().is_none_or(|m| *v > *m) {
            self.max = Some(v.clone());
        }
    }

    pub(crate) fn func(&self) -> AggFunc {
        self.func
    }

    pub(crate) fn finish(self) -> Value {
        match self.func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else {
                    match self.sum {
                        NumAcc::Int(s) => Value::Int(s),
                        NumAcc::Float(k) => Value::Float(k.value()),
                    }
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum.as_f64() / self.count as f64)
                }
            }
            AggFunc::Min => self.min.unwrap_or(Value::Null),
            AggFunc::Max => self.max.unwrap_or(Value::Null),
        }
    }
}
