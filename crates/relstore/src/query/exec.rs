//! Plan execution (materializing executor).
//!
//! Each node materializes its input(s) and produces a [`Relation`]. The
//! benchmark's datasets are period-sized (thousands to tens of thousands of
//! rows), where a materializing executor is simple and fast; joins are hash
//! joins with build-side selection by estimated cardinality.

use crate::catalog::Database;
use crate::error::{StoreError, StoreResult};
use crate::index::key_of;
use crate::query::plan::{AggFunc, JoinKind, Plan};
use crate::row::{Relation, Row};
use crate::value::Value;
use std::collections::{HashMap, HashSet};

/// Execution options; `optimize` routes the plan through the rule-based
/// planner first (the ablation switch for the FedDBMS experiments).
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    pub optimize: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { optimize: true }
    }
}

/// Execute `plan` against `db`.
pub fn execute(plan: &Plan, db: &Database, opts: ExecOptions) -> StoreResult<Relation> {
    if opts.optimize {
        let optimized = crate::query::planner::optimize(plan.clone(), db)?;
        run(&optimized, db)
    } else {
        run(plan, db)
    }
}

/// Execute with default options (optimizer on).
pub fn run_query(plan: &Plan, db: &Database) -> StoreResult<Relation> {
    execute(plan, db, ExecOptions::default())
}

/// Trace label of a plan node (one span per executed node).
fn plan_op(plan: &Plan) -> &'static str {
    match plan {
        Plan::Scan { .. } => "scan",
        Plan::Values(_) => "values",
        Plan::Filter { .. } => "filter",
        Plan::Project { .. } => "project",
        Plan::HashJoin { .. } => "hash_join",
        Plan::UnionAll(_) => "union_all",
        Plan::UnionDistinct { .. } => "union_distinct",
        Plan::Aggregate { .. } => "aggregate",
        Plan::Sort { .. } => "sort",
        Plan::Limit { .. } => "limit",
    }
}

fn run(plan: &Plan, db: &Database) -> StoreResult<Relation> {
    let _span = dip_trace::span_cat(
        dip_trace::Layer::Relstore,
        plan_op(plan),
        dip_trace::Category::Processing,
    );
    match plan {
        Plan::Scan {
            table,
            predicate,
            projection,
        } => {
            let t = db.table(table)?;
            match predicate {
                Some(p) => t.scan_where(p, projection.as_deref()),
                None => match projection {
                    Some(proj) => {
                        let mut rows = Vec::with_capacity(t.row_count());
                        t.for_each(|r| {
                            rows.push(proj.iter().map(|&i| r[i].clone()).collect::<Row>());
                            Ok::<(), StoreError>(())
                        })?;
                        Ok(Relation::new(t.schema.project(proj).shared(), rows))
                    }
                    None => Ok(t.scan()),
                },
            }
        }
        Plan::Values(rel) => Ok(rel.clone()),
        Plan::Filter { input, predicate } => {
            let rel = run(input, db)?;
            let mut rows = Vec::new();
            for r in rel.rows {
                if predicate.matches(&r)? {
                    rows.push(r);
                }
            }
            Ok(Relation::new(rel.schema, rows))
        }
        Plan::Project { input, exprs } => {
            let rel = run(input, db)?;
            let schema = plan.schema(db)?;
            let mut rows = Vec::with_capacity(rel.rows.len());
            for r in &rel.rows {
                let row: StoreResult<Row> = exprs.iter().map(|p| p.expr.eval(r)).collect();
                rows.push(row?);
            }
            Ok(Relation::new(schema, rows))
        }
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            kind,
        } => {
            let l = run(left, db)?;
            let r = run(right, db)?;
            hash_join(db, plan, l, r, left_keys, right_keys, *kind)
        }
        Plan::UnionAll(inputs) => {
            let schema = plan.schema(db)?;
            let mut rows = Vec::new();
            for i in inputs {
                let rel = run(i, db)?;
                if rel.schema.len() != schema.len() {
                    return Err(StoreError::Invalid(format!(
                        "union arity mismatch: {} vs {}",
                        rel.schema.len(),
                        schema.len()
                    )));
                }
                rows.extend(rel.rows);
            }
            Ok(Relation::new(schema, rows))
        }
        Plan::UnionDistinct { inputs, key } => {
            let schema = plan.schema(db)?;
            let mut rows: Vec<Row> = Vec::new();
            match key {
                Some(cols) => {
                    let mut seen: HashSet<Vec<Value>> = HashSet::new();
                    for i in inputs {
                        let rel = run(i, db)?;
                        if rel.schema.len() != schema.len() {
                            return Err(StoreError::Invalid("union arity mismatch".into()));
                        }
                        for r in rel.rows {
                            if seen.insert(key_of(&r, cols)) {
                                rows.push(r);
                            }
                        }
                    }
                }
                None => {
                    let mut seen: HashSet<Row> = HashSet::new();
                    for i in inputs {
                        let rel = run(i, db)?;
                        if rel.schema.len() != schema.len() {
                            return Err(StoreError::Invalid("union arity mismatch".into()));
                        }
                        for r in rel.rows {
                            if seen.insert(r.clone()) {
                                rows.push(r);
                            }
                        }
                    }
                }
            }
            Ok(Relation::new(schema, rows))
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let rel = run(input, db)?;
            let schema = plan.schema(db)?;
            let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
            let mut order: Vec<Vec<Value>> = Vec::new();
            for r in &rel.rows {
                let key = key_of(r, group_by);
                let states = match groups.get_mut(&key) {
                    Some(s) => s,
                    None => {
                        order.push(key.clone());
                        groups
                            .entry(key.clone())
                            .or_insert_with(|| aggs.iter().map(|a| AggState::new(a.func)).collect())
                    }
                };
                for (st, a) in states.iter_mut().zip(aggs) {
                    let v = match &a.input {
                        Some(e) => Some(e.eval(r)?),
                        None => None,
                    };
                    st.update(v);
                }
            }
            // Global aggregate over zero rows still yields one row.
            if groups.is_empty() && group_by.is_empty() {
                order.push(vec![]);
                groups.insert(vec![], aggs.iter().map(|a| AggState::new(a.func)).collect());
            }
            let mut rows = Vec::with_capacity(order.len());
            for key in order {
                let states = groups.remove(&key).expect("group exists");
                let mut row = key;
                for st in states {
                    row.push(st.finish());
                }
                rows.push(row);
            }
            Ok(Relation::new(schema, rows))
        }
        Plan::Sort { input, keys } => {
            let mut rel = run(input, db)?;
            rel.sort_by_columns(keys);
            Ok(rel)
        }
        Plan::Limit { input, n } => {
            let mut rel = run(input, db)?;
            rel.rows.truncate(*n);
            Ok(rel)
        }
    }
}

fn hash_join(
    db: &Database,
    plan: &Plan,
    left: Relation,
    right: Relation,
    left_keys: &[usize],
    right_keys: &[usize],
    kind: JoinKind,
) -> StoreResult<Relation> {
    if left_keys.len() != right_keys.len() {
        return Err(StoreError::Invalid("join key arity mismatch".into()));
    }
    let schema = plan.schema(db)?;
    // Build on the smaller side for inner joins; LEFT joins must build on
    // the right so unmatched left rows can be emitted while probing.
    let build_right = kind == JoinKind::Left || right.len() <= left.len();
    let (build, probe, build_keys, probe_keys, probe_is_left) = if build_right {
        (&right, &left, right_keys, left_keys, true)
    } else {
        (&left, &right, left_keys, right_keys, false)
    };
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(build.len());
    for (i, r) in build.rows.iter().enumerate() {
        let key = key_of(r, build_keys);
        if key.iter().any(|v| v.is_null()) {
            continue; // NULL keys never join
        }
        table.entry(key).or_default().push(i);
    }
    let mut rows = Vec::new();
    for pr in &probe.rows {
        let key = key_of(pr, probe_keys);
        let matches = if key.iter().any(|v| v.is_null()) {
            None
        } else {
            table.get(&key)
        };
        match matches {
            Some(slots) => {
                for &s in slots {
                    let br = &build.rows[s];
                    let row: Row = if probe_is_left {
                        pr.iter().chain(br.iter()).cloned().collect()
                    } else {
                        br.iter().chain(pr.iter()).cloned().collect()
                    };
                    rows.push(row);
                }
            }
            None => {
                if kind == JoinKind::Left && probe_is_left {
                    let mut row: Row = pr.clone();
                    row.extend(std::iter::repeat_n(Value::Null, build.schema.len()));
                    rows.push(row);
                }
            }
        }
    }
    Ok(Relation::new(schema, rows))
}

/// Streaming aggregate state.
#[derive(Debug)]
struct AggState {
    func: AggFunc,
    count: u64,
    sum: f64,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    fn new(func: AggFunc) -> AggState {
        AggState {
            func,
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
        }
    }

    fn update(&mut self, v: Option<Value>) {
        match self.func {
            AggFunc::Count => {
                // COUNT(*) counts rows; COUNT(expr) skips NULLs.
                match &v {
                    None => self.count += 1,
                    Some(x) if !x.is_null() => self.count += 1,
                    _ => {}
                }
            }
            AggFunc::Sum | AggFunc::Avg => {
                if let Some(x) = v {
                    if let Some(f) = x.to_float() {
                        self.sum += f;
                        self.count += 1;
                    }
                }
            }
            AggFunc::Min => {
                if let Some(x) = v {
                    if !x.is_null() && self.min.as_ref().is_none_or(|m| x < *m) {
                        self.min = Some(x);
                    }
                }
            }
            AggFunc::Max => {
                if let Some(x) = v {
                    if !x.is_null() && self.max.as_ref().is_none_or(|m| x > *m) {
                        self.max = Some(x);
                    }
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self.func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.unwrap_or(Value::Null),
            AggFunc::Max => self.max.unwrap_or(Value::Null),
        }
    }
}
