//! Query processing: logical plans, a rule-based planner and a
//! materializing executor.

pub mod exec;
pub mod plan;
pub mod planner;

pub use exec::{execute, run_query, ExecOptions};
pub use plan::{AggExpr, AggFunc, JoinKind, Plan, ProjExpr};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use crate::expr::Expr;
    use crate::schema::RelSchema;
    use crate::table::Table;
    use crate::value::{SqlType, Value};

    fn db() -> Database {
        let db = Database::new("q");
        let cust = RelSchema::of(&[
            ("custkey", SqlType::Int),
            ("name", SqlType::Str),
            ("citykey", SqlType::Int),
        ])
        .shared();
        let city = RelSchema::of(&[("citykey", SqlType::Int), ("cname", SqlType::Str)]).shared();
        let t = Table::new("customer", cust)
            .with_primary_key(&["custkey"])
            .unwrap();
        t.insert(vec![
            vec![Value::Int(1), Value::str("alpha"), Value::Int(10)],
            vec![Value::Int(2), Value::str("beta"), Value::Int(20)],
            vec![Value::Int(3), Value::str("gamma"), Value::Int(10)],
            vec![Value::Int(4), Value::str("delta"), Value::Int(99)],
        ])
        .unwrap();
        db.create_table(t);
        let t = Table::new("city", city)
            .with_primary_key(&["citykey"])
            .unwrap();
        t.insert(vec![
            vec![Value::Int(10), Value::str("Berlin")],
            vec![Value::Int(20), Value::str("Paris")],
        ])
        .unwrap();
        db.create_table(t);
        db
    }

    #[test]
    fn scan_filter_project() {
        let db = db();
        let schema = db.table("customer").unwrap().schema.clone();
        let plan = Plan::scan("customer")
            .filter(Expr::col(2).eq(Expr::lit(10)))
            .project(vec![
                ProjExpr::passthrough(&schema, "name", Some("n")).unwrap()
            ]);
        let rel = run_query(&plan, &db).unwrap();
        assert_eq!(rel.schema.names(), vec!["n"]);
        let mut names: Vec<String> = rel.rows.iter().map(|r| r[0].render()).collect();
        names.sort();
        assert_eq!(names, vec!["alpha", "gamma"]);
    }

    #[test]
    fn inner_join() {
        let db = db();
        let plan =
            Plan::scan("customer").hash_join(Plan::scan("city"), vec![2], vec![0], JoinKind::Inner);
        let rel = run_query(&plan, &db).unwrap();
        assert_eq!(rel.len(), 3); // delta's citykey 99 has no match
        assert_eq!(rel.schema.len(), 5);
    }

    #[test]
    fn left_join_pads_nulls() {
        let db = db();
        let plan =
            Plan::scan("customer").hash_join(Plan::scan("city"), vec![2], vec![0], JoinKind::Left);
        let mut rel = run_query(&plan, &db).unwrap();
        assert_eq!(rel.len(), 4);
        rel.sort_by_columns(&[0]);
        assert!(rel.rows[3][4].is_null()); // delta row padded
    }

    #[test]
    fn union_distinct_on_key() {
        let db = db();
        let plan = Plan::UnionDistinct {
            inputs: vec![Plan::scan("customer"), Plan::scan("customer")],
            key: Some(vec![0]),
        };
        let rel = run_query(&plan, &db).unwrap();
        assert_eq!(rel.len(), 4);
    }

    #[test]
    fn union_distinct_whole_row() {
        let db = db();
        let plan = Plan::UnionDistinct {
            inputs: vec![Plan::scan("city"), Plan::scan("city")],
            key: None,
        };
        let rel = run_query(&plan, &db).unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn aggregate_group_by() {
        let db = db();
        let plan = Plan::scan("customer").aggregate(
            vec![2],
            vec![
                AggExpr::count_star("n"),
                AggExpr::new(AggFunc::Max, Expr::col(0), "maxk"),
            ],
        );
        let mut rel = run_query(&plan, &db).unwrap();
        rel.sort_by_columns(&[0]);
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.get(0, "n"), &Value::Int(2)); // citykey 10 twice
        assert_eq!(rel.get(0, "maxk"), &Value::Float(3.0));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let db = db();
        let plan = Plan::scan("customer")
            .filter(Expr::col(0).gt(Expr::lit(1000)))
            .aggregate(vec![], vec![AggExpr::count_star("n")]);
        let rel = run_query(&plan, &db).unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.rows[0][0], Value::Int(0));
    }

    #[test]
    fn sort_and_limit() {
        let db = db();
        let plan = Plan::scan("customer").sort(vec![0]).limit(2);
        let rel = run_query(&plan, &db).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.rows[0][0], Value::Int(1));
    }

    #[test]
    fn optimized_equals_unoptimized() {
        let db = db();
        let schema = db.table("customer").unwrap().schema.clone();
        let plan = Plan::scan("customer")
            .hash_join(Plan::scan("city"), vec![2], vec![0], JoinKind::Inner)
            .filter(
                Expr::col(1)
                    .like("%a%")
                    .and(Expr::col(4).eq(Expr::lit("Berlin"))),
            )
            .project(vec![ProjExpr::passthrough(&schema, "name", None).unwrap()]);
        let mut a = execute(&plan, &db, ExecOptions { optimize: true }).unwrap();
        let mut b = execute(&plan, &db, ExecOptions { optimize: false }).unwrap();
        a.sort_by_columns(&[0]);
        b.sort_by_columns(&[0]);
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn sum_keeps_integer_type_and_exactness() {
        let db = db();
        // SUM over an Int column stays Int — and stays exact above 2^53,
        // where an f64 accumulator would silently round
        let schema = RelSchema::of(&[("x", SqlType::Int)]).shared();
        let big = 9_007_199_254_740_993i64; // 2^53 + 1, not representable in f64
        let rel = crate::row::Relation::new(
            schema.clone(),
            vec![vec![Value::Int(big)], vec![Value::Int(0)]],
        );
        let plan = Plan::Values(rel)
            .aggregate(vec![], vec![AggExpr::new(AggFunc::Sum, Expr::col(0), "s")]);
        for optimize in [true, false] {
            let out = execute(&plan, &db, ExecOptions { optimize }).unwrap();
            assert_eq!(out.rows[0][0], Value::Int(big), "optimize={optimize}");
        }
        // the output schema advertises Int as well
        assert_eq!(plan.schema(&db).unwrap().column(0).ty, SqlType::Int);

        // overflow falls back to float instead of panicking/wrapping
        let rel = crate::row::Relation::new(
            schema.clone(),
            vec![vec![Value::Int(i64::MAX)], vec![Value::Int(i64::MAX)]],
        );
        let plan = Plan::Values(rel)
            .aggregate(vec![], vec![AggExpr::new(AggFunc::Sum, Expr::col(0), "s")]);
        let out = run_query(&plan, &db).unwrap();
        assert_eq!(out.rows[0][0], Value::Float(i64::MAX as f64 * 2.0));

        // mixed int/float input widens to Float; AVG is always Float
        let mixed = RelSchema::of(&[("x", SqlType::Float)]).shared();
        let rel =
            crate::row::Relation::new(mixed, vec![vec![Value::Int(1)], vec![Value::Float(2.5)]]);
        let plan = Plan::Values(rel).aggregate(
            vec![],
            vec![
                AggExpr::new(AggFunc::Sum, Expr::col(0), "s"),
                AggExpr::new(AggFunc::Avg, Expr::col(0), "a"),
            ],
        );
        let out = run_query(&plan, &db).unwrap();
        assert_eq!(out.rows[0][0], Value::Float(3.5));
        assert_eq!(out.rows[0][1], Value::Float(1.75));
    }

    #[test]
    fn limit_over_sort_becomes_topk() {
        let db = db();
        let plan = Plan::scan("customer").sort(vec![2]).limit(2);
        let opt = crate::query::planner::optimize(plan.clone(), &db).unwrap();
        assert!(
            matches!(opt, Plan::TopK { n: 2, .. }),
            "expected TopK, got {opt:?}"
        );
        // bounded top-K reproduces sort-then-truncate exactly, including the
        // stable order of tied keys (citykey 10 appears twice)
        let a = execute(&plan, &db, ExecOptions { optimize: true }).unwrap();
        let b = execute(&plan, &db, ExecOptions { optimize: false }).unwrap();
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.len(), 2);
        assert_eq!(a.rows[0][2], Value::Int(10));
    }

    #[test]
    fn planner_selects_index_join_on_pk() {
        let db = db();
        // city is scanned with its join key covered by its primary key
        let plan =
            Plan::scan("customer").hash_join(Plan::scan("city"), vec![2], vec![0], JoinKind::Inner);
        let opt = crate::query::planner::optimize(plan.clone(), &db).unwrap();
        assert!(
            matches!(
                opt,
                Plan::IndexJoin {
                    probe_is_left: true,
                    ..
                }
            ),
            "expected IndexJoin, got {opt:?}"
        );
        let mut a = execute(&plan, &db, ExecOptions { optimize: true }).unwrap();
        let mut b = execute(&plan, &db, ExecOptions { optimize: false }).unwrap();
        a.sort_by_columns(&[0]);
        b.sort_by_columns(&[0]);
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn index_join_preserves_left_join_padding() {
        let db = db();
        let plan =
            Plan::scan("customer").hash_join(Plan::scan("city"), vec![2], vec![0], JoinKind::Left);
        let opt = crate::query::planner::optimize(plan.clone(), &db).unwrap();
        assert!(matches!(opt, Plan::IndexJoin { .. }), "got {opt:?}");
        let mut rel = execute(&plan, &db, ExecOptions { optimize: true }).unwrap();
        rel.sort_by_columns(&[0]);
        assert_eq!(rel.len(), 4);
        assert!(rel.rows[3][4].is_null()); // delta's citykey 99 padded
    }

    #[test]
    fn self_join_is_not_index_joined() {
        let db = db();
        // probing would re-lock the table the probe side is scanning
        let plan = Plan::scan("customer").hash_join(
            Plan::scan("customer"),
            vec![0],
            vec![0],
            JoinKind::Inner,
        );
        let opt = crate::query::planner::optimize(plan.clone(), &db).unwrap();
        assert!(matches!(opt, Plan::HashJoin { .. }), "got {opt:?}");
        let rel = run_query(&plan, &db).unwrap();
        assert_eq!(rel.len(), 4);
    }

    #[test]
    fn limit_terminates_union_early() {
        let db = db();
        // LIMIT under the streaming executor stops upstream producers; a
        // union must still yield rows from its first inputs only
        let plan = Plan::UnionAll(vec![Plan::scan("customer"), Plan::scan("customer")]).limit(5);
        for optimize in [true, false] {
            let rel = execute(&plan, &db, ExecOptions { optimize }).unwrap();
            assert_eq!(rel.len(), 5, "optimize={optimize}");
        }
    }

    #[test]
    fn values_plan() {
        let db = db();
        let schema = RelSchema::of(&[("x", SqlType::Int)]).shared();
        let rel = crate::row::Relation::new(schema, vec![vec![Value::Int(5)]]);
        let plan = Plan::Values(rel).project(vec![ProjExpr::new(
            Expr::col(0).mul(Expr::lit(2)),
            "y",
            SqlType::Int,
        )]);
        let out = run_query(&plan, &db).unwrap();
        assert_eq!(out.rows[0][0], Value::Int(10));
    }
}
