//! Query processing: logical plans, a rule-based planner and a
//! materializing executor.

pub mod exec;
pub mod plan;
pub mod planner;

pub use exec::{execute, run_query, ExecOptions};
pub use plan::{AggExpr, AggFunc, JoinKind, Plan, ProjExpr};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use crate::expr::Expr;
    use crate::schema::RelSchema;
    use crate::table::Table;
    use crate::value::{SqlType, Value};

    fn db() -> Database {
        let db = Database::new("q");
        let cust = RelSchema::of(&[
            ("custkey", SqlType::Int),
            ("name", SqlType::Str),
            ("citykey", SqlType::Int),
        ])
        .shared();
        let city = RelSchema::of(&[("citykey", SqlType::Int), ("cname", SqlType::Str)]).shared();
        let t = Table::new("customer", cust)
            .with_primary_key(&["custkey"])
            .unwrap();
        t.insert(vec![
            vec![Value::Int(1), Value::str("alpha"), Value::Int(10)],
            vec![Value::Int(2), Value::str("beta"), Value::Int(20)],
            vec![Value::Int(3), Value::str("gamma"), Value::Int(10)],
            vec![Value::Int(4), Value::str("delta"), Value::Int(99)],
        ])
        .unwrap();
        db.create_table(t);
        let t = Table::new("city", city)
            .with_primary_key(&["citykey"])
            .unwrap();
        t.insert(vec![
            vec![Value::Int(10), Value::str("Berlin")],
            vec![Value::Int(20), Value::str("Paris")],
        ])
        .unwrap();
        db.create_table(t);
        db
    }

    #[test]
    fn scan_filter_project() {
        let db = db();
        let schema = db.table("customer").unwrap().schema.clone();
        let plan = Plan::scan("customer")
            .filter(Expr::col(2).eq(Expr::lit(10)))
            .project(vec![
                ProjExpr::passthrough(&schema, "name", Some("n")).unwrap()
            ]);
        let rel = run_query(&plan, &db).unwrap();
        assert_eq!(rel.schema.names(), vec!["n"]);
        let mut names: Vec<String> = rel.rows.iter().map(|r| r[0].render()).collect();
        names.sort();
        assert_eq!(names, vec!["alpha", "gamma"]);
    }

    #[test]
    fn inner_join() {
        let db = db();
        let plan =
            Plan::scan("customer").hash_join(Plan::scan("city"), vec![2], vec![0], JoinKind::Inner);
        let rel = run_query(&plan, &db).unwrap();
        assert_eq!(rel.len(), 3); // delta's citykey 99 has no match
        assert_eq!(rel.schema.len(), 5);
    }

    #[test]
    fn left_join_pads_nulls() {
        let db = db();
        let plan =
            Plan::scan("customer").hash_join(Plan::scan("city"), vec![2], vec![0], JoinKind::Left);
        let mut rel = run_query(&plan, &db).unwrap();
        assert_eq!(rel.len(), 4);
        rel.sort_by_columns(&[0]);
        assert!(rel.rows[3][4].is_null()); // delta row padded
    }

    #[test]
    fn union_distinct_on_key() {
        let db = db();
        let plan = Plan::UnionDistinct {
            inputs: vec![Plan::scan("customer"), Plan::scan("customer")],
            key: Some(vec![0]),
        };
        let rel = run_query(&plan, &db).unwrap();
        assert_eq!(rel.len(), 4);
    }

    #[test]
    fn union_distinct_whole_row() {
        let db = db();
        let plan = Plan::UnionDistinct {
            inputs: vec![Plan::scan("city"), Plan::scan("city")],
            key: None,
        };
        let rel = run_query(&plan, &db).unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn aggregate_group_by() {
        let db = db();
        let plan = Plan::scan("customer").aggregate(
            vec![2],
            vec![
                AggExpr::count_star("n"),
                AggExpr::new(AggFunc::Max, Expr::col(0), "maxk"),
            ],
        );
        let mut rel = run_query(&plan, &db).unwrap();
        rel.sort_by_columns(&[0]);
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.get(0, "n"), &Value::Int(2)); // citykey 10 twice
        assert_eq!(rel.get(0, "maxk"), &Value::Float(3.0));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let db = db();
        let plan = Plan::scan("customer")
            .filter(Expr::col(0).gt(Expr::lit(1000)))
            .aggregate(vec![], vec![AggExpr::count_star("n")]);
        let rel = run_query(&plan, &db).unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.rows[0][0], Value::Int(0));
    }

    #[test]
    fn sort_and_limit() {
        let db = db();
        let plan = Plan::scan("customer").sort(vec![0]).limit(2);
        let rel = run_query(&plan, &db).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.rows[0][0], Value::Int(1));
    }

    #[test]
    fn optimized_equals_unoptimized() {
        let db = db();
        let schema = db.table("customer").unwrap().schema.clone();
        let plan = Plan::scan("customer")
            .hash_join(Plan::scan("city"), vec![2], vec![0], JoinKind::Inner)
            .filter(
                Expr::col(1)
                    .like("%a%")
                    .and(Expr::col(4).eq(Expr::lit("Berlin"))),
            )
            .project(vec![ProjExpr::passthrough(&schema, "name", None).unwrap()]);
        let mut a = execute(&plan, &db, ExecOptions { optimize: true }).unwrap();
        let mut b = execute(&plan, &db, ExecOptions { optimize: false }).unwrap();
        a.sort_by_columns(&[0]);
        b.sort_by_columns(&[0]);
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn values_plan() {
        let db = db();
        let schema = RelSchema::of(&[("x", SqlType::Int)]).shared();
        let rel = crate::row::Relation::new(schema, vec![vec![Value::Int(5)]]);
        let plan = Plan::Values(rel).project(vec![ProjExpr::new(
            Expr::col(0).mul(Expr::lit(2)),
            "y",
            SqlType::Int,
        )]);
        let out = run_query(&plan, &db).unwrap();
        assert_eq!(out.rows[0][0], Value::Int(10));
    }
}
