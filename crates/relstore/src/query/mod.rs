//! Query processing: logical plans, a rule-based planner and three
//! executors (oracle / streaming / vectorized) behind [`ExecMode`].

mod batch;
pub mod exec;
mod hashkey;
pub mod plan;
pub mod planner;

pub use batch::{ablate_boxed_columns, ablate_boxed_probe, ablate_row_keys};
pub use exec::{default_mode, execute, set_default_mode, ExecMode};
pub use plan::{AggExpr, AggFunc, JoinKind, Plan, ProjExpr};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use crate::expr::Expr;
    use crate::row::Relation;
    use crate::schema::RelSchema;
    use crate::table::Table;
    use crate::value::{SqlType, Value};

    fn db() -> Database {
        let db = Database::new("q");
        let cust = RelSchema::of(&[
            ("custkey", SqlType::Int),
            ("name", SqlType::Str),
            ("citykey", SqlType::Int),
        ])
        .shared();
        let city = RelSchema::of(&[("citykey", SqlType::Int), ("cname", SqlType::Str)]).shared();
        let t = Table::new("customer", cust)
            .with_primary_key(&["custkey"])
            .unwrap();
        t.insert(vec![
            vec![Value::Int(1), Value::str("alpha"), Value::Int(10)],
            vec![Value::Int(2), Value::str("beta"), Value::Int(20)],
            vec![Value::Int(3), Value::str("gamma"), Value::Int(10)],
            vec![Value::Int(4), Value::str("delta"), Value::Int(99)],
        ])
        .unwrap();
        db.create_table(t);
        let t = Table::new("city", city)
            .with_primary_key(&["citykey"])
            .unwrap();
        t.insert(vec![
            vec![Value::Int(10), Value::str("Berlin")],
            vec![Value::Int(20), Value::str("Paris")],
        ])
        .unwrap();
        db.create_table(t);
        db
    }

    /// Run a plan through every executor: streaming and vectorized must
    /// match **row-for-row** (same optimized plan, same emission order),
    /// the oracle must agree as a multiset (the unoptimized plan may emit
    /// another order), and `Auto` must equal whichever path it picked.
    /// Returns the streaming result.
    fn run_all_modes(plan: &Plan, db: &Database) -> Relation {
        let s = execute(plan, db, ExecMode::Streaming).unwrap();
        let v = execute(plan, db, ExecMode::Vectorized).unwrap();
        assert_eq!(s.rows, v.rows, "streaming vs vectorized row-for-row");
        let a = execute(plan, db, ExecMode::Auto).unwrap();
        assert_eq!(s.rows, a.rows, "auto must match its chosen path");
        let o = execute(plan, db, ExecMode::Oracle).unwrap();
        let mut os = o.rows;
        let mut ss = s.rows.clone();
        os.sort();
        ss.sort();
        assert_eq!(os, ss, "oracle vs streaming multiset");
        s
    }

    #[test]
    fn scan_filter_project() {
        let db = db();
        let schema = db.table("customer").unwrap().schema.clone();
        let plan = Plan::scan("customer")
            .filter(Expr::col(2).eq(Expr::lit(10)))
            .project(vec![
                ProjExpr::passthrough(&schema, "name", Some("n")).unwrap()
            ]);
        let rel = run_all_modes(&plan, &db);
        assert_eq!(rel.schema.names(), vec!["n"]);
        let mut names: Vec<String> = rel.rows.iter().map(|r| r[0].render()).collect();
        names.sort();
        assert_eq!(names, vec!["alpha", "gamma"]);
    }

    #[test]
    fn inner_join() {
        let db = db();
        let plan =
            Plan::scan("customer").hash_join(Plan::scan("city"), vec![2], vec![0], JoinKind::Inner);
        let rel = run_all_modes(&plan, &db);
        assert_eq!(rel.len(), 3); // delta's citykey 99 has no match
        assert_eq!(rel.schema.len(), 5);
    }

    #[test]
    fn left_join_pads_nulls() {
        let db = db();
        let plan =
            Plan::scan("customer").hash_join(Plan::scan("city"), vec![2], vec![0], JoinKind::Left);
        let mut rel = run_all_modes(&plan, &db);
        assert_eq!(rel.len(), 4);
        rel.sort_by_columns(&[0]);
        assert!(rel.rows[3][4].is_null()); // delta row padded
    }

    #[test]
    fn union_distinct_on_key() {
        let db = db();
        let plan = Plan::UnionDistinct {
            inputs: vec![Plan::scan("customer"), Plan::scan("customer")],
            key: Some(vec![0]),
        };
        let rel = run_all_modes(&plan, &db);
        assert_eq!(rel.len(), 4);
    }

    #[test]
    fn union_distinct_whole_row() {
        let db = db();
        let plan = Plan::UnionDistinct {
            inputs: vec![Plan::scan("city"), Plan::scan("city")],
            key: None,
        };
        let rel = run_all_modes(&plan, &db);
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn aggregate_group_by() {
        let db = db();
        let plan = Plan::scan("customer").aggregate(
            vec![2],
            vec![
                AggExpr::count_star("n"),
                AggExpr::new(AggFunc::Max, Expr::col(0), "maxk"),
            ],
        );
        let mut rel = run_all_modes(&plan, &db);
        rel.sort_by_columns(&[0]);
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.get(0, "n"), &Value::Int(2)); // citykey 10 twice
        assert_eq!(rel.get(0, "maxk"), &Value::Float(3.0));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let db = db();
        let plan = Plan::scan("customer")
            .filter(Expr::col(0).gt(Expr::lit(1000)))
            .aggregate(vec![], vec![AggExpr::count_star("n")]);
        let rel = run_all_modes(&plan, &db);
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.rows[0][0], Value::Int(0));
    }

    #[test]
    fn sort_and_limit() {
        let db = db();
        let plan = Plan::scan("customer").sort(vec![0]).limit(2);
        let rel = run_all_modes(&plan, &db);
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.rows[0][0], Value::Int(1));
    }

    #[test]
    fn optimized_equals_unoptimized() {
        let db = db();
        let schema = db.table("customer").unwrap().schema.clone();
        let plan = Plan::scan("customer")
            .hash_join(Plan::scan("city"), vec![2], vec![0], JoinKind::Inner)
            .filter(
                Expr::col(1)
                    .like("%a%")
                    .and(Expr::col(4).eq(Expr::lit("Berlin"))),
            )
            .project(vec![ProjExpr::passthrough(&schema, "name", None).unwrap()]);
        run_all_modes(&plan, &db);
    }

    #[test]
    fn sum_keeps_integer_type_and_exactness() {
        let db = db();
        // SUM over an Int column stays Int — and stays exact above 2^53,
        // where an f64 accumulator would silently round
        let schema = RelSchema::of(&[("x", SqlType::Int)]).shared();
        let big = 9_007_199_254_740_993i64; // 2^53 + 1, not representable in f64
        let rel = Relation::new(
            schema.clone(),
            vec![vec![Value::Int(big)], vec![Value::Int(0)]],
        );
        let plan = Plan::Values(rel)
            .aggregate(vec![], vec![AggExpr::new(AggFunc::Sum, Expr::col(0), "s")]);
        for mode in ExecMode::ALL {
            let out = execute(&plan, &db, mode).unwrap();
            assert_eq!(out.rows[0][0], Value::Int(big), "mode={}", mode.label());
        }
        // the output schema advertises Int as well
        assert_eq!(plan.schema(&db).unwrap().column(0).ty, SqlType::Int);

        // overflow falls back to float instead of panicking/wrapping
        let rel = Relation::new(
            schema.clone(),
            vec![vec![Value::Int(i64::MAX)], vec![Value::Int(i64::MAX)]],
        );
        let plan = Plan::Values(rel)
            .aggregate(vec![], vec![AggExpr::new(AggFunc::Sum, Expr::col(0), "s")]);
        let out = run_all_modes(&plan, &db);
        assert_eq!(out.rows[0][0], Value::Float(i64::MAX as f64 * 2.0));

        // mixed int/float input widens to Float; AVG is always Float
        let mixed = RelSchema::of(&[("x", SqlType::Float)]).shared();
        let rel = Relation::new(mixed, vec![vec![Value::Int(1)], vec![Value::Float(2.5)]]);
        let plan = Plan::Values(rel).aggregate(
            vec![],
            vec![
                AggExpr::new(AggFunc::Sum, Expr::col(0), "s"),
                AggExpr::new(AggFunc::Avg, Expr::col(0), "a"),
            ],
        );
        let out = run_all_modes(&plan, &db);
        assert_eq!(out.rows[0][0], Value::Float(3.5));
        assert_eq!(out.rows[0][1], Value::Float(1.75));
    }

    #[test]
    fn float_sum_is_order_invariant() {
        // The shared compensated (Kahan–Babuška/Neumaier) accumulator makes
        // float SUM independent of input order: [1e16, 1.0, -1e16] sums to
        // exactly 1.0 under every permutation, where naive f64 summation
        // loses the 1.0 for some orders. All three executors must produce
        // the identical byte pattern for every permutation.
        let db = db();
        let schema = RelSchema::of(&[("x", SqlType::Float)]).shared();
        let vals = [1e16f64, 1.0, -1e16];
        let perms: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for p in perms {
            let rows: Vec<Vec<Value>> = p.iter().map(|&i| vec![Value::Float(vals[i])]).collect();
            let plan = Plan::Values(Relation::new(schema.clone(), rows)).aggregate(
                vec![],
                vec![
                    AggExpr::new(AggFunc::Sum, Expr::col(0), "s"),
                    AggExpr::new(AggFunc::Avg, Expr::col(0), "a"),
                ],
            );
            for mode in ExecMode::ALL {
                let out = execute(&plan, &db, mode).unwrap();
                let Value::Float(s) = out.rows[0][0] else {
                    panic!("SUM not a float for {p:?}");
                };
                let Value::Float(a) = out.rows[0][1] else {
                    panic!("AVG not a float for {p:?}");
                };
                assert_eq!(
                    s.to_bits(),
                    1.0f64.to_bits(),
                    "permutation {p:?} mode={}",
                    mode.label()
                );
                assert_eq!(a.to_bits(), (1.0f64 / 3.0).to_bits(), "permutation {p:?}");
            }
        }
    }

    #[test]
    fn vectorized_handles_multi_chunk_inputs() {
        // More rows than one 1024-row chunk, exercising chunk boundaries
        // through filter → join → aggregate and LIMIT mid-chunk.
        let db = Database::new("big");
        let schema = RelSchema::of(&[("k", SqlType::Int), ("g", SqlType::Int)]).shared();
        let t = Table::new("wide", schema).with_primary_key(&["k"]).unwrap();
        t.insert(
            (0..3000)
                .map(|i| vec![Value::Int(i), Value::Int(i % 7)])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        db.create_table(t);

        let agg = Plan::scan("wide")
            .filter(Expr::col(0).lt(Expr::lit(2500)))
            .aggregate(
                vec![1],
                vec![
                    AggExpr::count_star("n"),
                    AggExpr::new(AggFunc::Sum, Expr::col(0), "s"),
                ],
            );
        let rel = run_all_modes(&agg, &db);
        assert_eq!(rel.len(), 7);
        let total: i64 = rel
            .rows
            .iter()
            .map(|r| match r[1] {
                Value::Int(n) => n,
                _ => 0,
            })
            .sum();
        assert_eq!(total, 2500);

        let join = Plan::scan("wide").hash_join(
            Plan::scan("wide").filter(Expr::col(1).eq(Expr::lit(3))),
            vec![0],
            vec![0],
            JoinKind::Inner,
        );
        let rel = run_all_modes(&join, &db);
        assert_eq!(rel.len(), 3000 / 7 + 1); // k ≡ 3 (mod 7): 3, 10, …, 2999

        let limited = Plan::scan("wide").limit(1500);
        let rel = run_all_modes(&limited, &db);
        assert_eq!(rel.len(), 1500);
    }

    #[test]
    fn limit_over_sort_becomes_topk() {
        let db = db();
        let plan = Plan::scan("customer").sort(vec![2]).limit(2);
        let opt = crate::query::planner::optimize(plan.clone(), &db).unwrap();
        assert!(
            matches!(opt, Plan::TopK { n: 2, .. }),
            "expected TopK, got {opt:?}"
        );
        // bounded top-K reproduces sort-then-truncate exactly, including the
        // stable order of tied keys (citykey 10 appears twice)
        let a = run_all_modes(&plan, &db);
        let b = execute(&plan, &db, ExecMode::Oracle).unwrap();
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.len(), 2);
        assert_eq!(a.rows[0][2], Value::Int(10));
    }

    #[test]
    fn planner_selects_index_join_on_pk() {
        let db = db();
        // city is scanned with its join key covered by its primary key
        let plan =
            Plan::scan("customer").hash_join(Plan::scan("city"), vec![2], vec![0], JoinKind::Inner);
        let opt = crate::query::planner::optimize(plan.clone(), &db).unwrap();
        assert!(
            matches!(
                opt,
                Plan::IndexJoin {
                    probe_is_left: true,
                    ..
                }
            ),
            "expected IndexJoin, got {opt:?}"
        );
        run_all_modes(&plan, &db);
    }

    #[test]
    fn index_join_preserves_left_join_padding() {
        let db = db();
        let plan =
            Plan::scan("customer").hash_join(Plan::scan("city"), vec![2], vec![0], JoinKind::Left);
        let opt = crate::query::planner::optimize(plan.clone(), &db).unwrap();
        assert!(matches!(opt, Plan::IndexJoin { .. }), "got {opt:?}");
        let mut rel = run_all_modes(&plan, &db);
        rel.sort_by_columns(&[0]);
        assert_eq!(rel.len(), 4);
        assert!(rel.rows[3][4].is_null()); // delta's citykey 99 padded
    }

    #[test]
    fn self_join_is_not_index_joined() {
        let db = db();
        // probing would re-lock the table the probe side is scanning
        let plan = Plan::scan("customer").hash_join(
            Plan::scan("customer"),
            vec![0],
            vec![0],
            JoinKind::Inner,
        );
        let opt = crate::query::planner::optimize(plan.clone(), &db).unwrap();
        assert!(matches!(opt, Plan::HashJoin { .. }), "got {opt:?}");
        let rel = run_all_modes(&plan, &db);
        assert_eq!(rel.len(), 4);
    }

    #[test]
    fn limit_terminates_union_early() {
        let db = db();
        // LIMIT stops upstream producers in both pipelined executors; a
        // union must still yield rows from its first inputs only
        let plan = Plan::UnionAll(vec![Plan::scan("customer"), Plan::scan("customer")]).limit(5);
        let rel = run_all_modes(&plan, &db);
        assert_eq!(rel.len(), 5);
    }

    #[test]
    fn values_plan() {
        let db = db();
        let schema = RelSchema::of(&[("x", SqlType::Int)]).shared();
        let rel = Relation::new(schema, vec![vec![Value::Int(5)]]);
        let plan = Plan::Values(rel).project(vec![ProjExpr::new(
            Expr::col(0).mul(Expr::lit(2)),
            "y",
            SqlType::Int,
        )]);
        let out = run_all_modes(&plan, &db);
        assert_eq!(out.rows[0][0], Value::Int(10));
    }

    #[test]
    fn project_after_unpushable_filter() {
        let db = db();
        // The predicate compares columns from both join sides, so the
        // planner keeps it as a residual Filter above the join: the batch
        // executor's Project then sees a chunk with a selection vector
        // over gathered join columns — a shape where forwarded bare
        // columns must compose the selection into their gather index
        // (regression: the physical selection was once re-attached to
        // already-compacted columns).
        let schema = db.table("customer").unwrap().schema.clone();
        let plan = Plan::scan("customer")
            .hash_join(Plan::scan("city"), vec![2], vec![0], JoinKind::Inner)
            .filter(Expr::col(0).add(Expr::col(3)).lt(Expr::lit(20)))
            .project(vec![
                ProjExpr::passthrough(&schema, "name", None).unwrap(),
                ProjExpr::new(Expr::col(0).mul(Expr::lit(10)), "k10", SqlType::Int),
            ]);
        // the shape under test: the filter survives above the join
        let opt = crate::query::planner::optimize(plan.clone(), &db).unwrap();
        let Plan::Project { input, .. } = &opt else {
            panic!("expected Project root, got {opt:?}");
        };
        assert!(
            matches!(&**input, Plan::Filter { input, .. }
                if matches!(&**input, Plan::HashJoin { .. } | Plan::IndexJoin { .. })),
            "expected residual filter above join, got {opt:?}"
        );
        // survivors are rows 0 and 2 of the join output — a
        // non-contiguous selection, so a mis-attached physical selection
        // cannot pass by coincidence on a prefix
        let mut rel = run_all_modes(&plan, &db);
        rel.sort_by_columns(&[1]);
        assert_eq!(rel.len(), 2); // alpha (1+10) and gamma (3+10); beta is 2+20
        assert_eq!(rel.rows[0][0], Value::str("alpha"));
        assert_eq!(rel.rows[0][1], Value::Int(10));
        assert_eq!(rel.rows[1][0], Value::str("gamma"));
        assert_eq!(rel.rows[1][1], Value::Int(30));
    }

    #[test]
    fn exec_mode_parse_and_label_round_trip() {
        for mode in ExecMode::ALL {
            assert_eq!(ExecMode::parse(mode.label()), Some(mode));
        }
        assert_eq!(ExecMode::parse("turbo"), None);
        assert_eq!(ExecMode::parse(""), None);
    }

    /// A table big enough to clear the batch crossover estimate.
    fn big_db(rows: usize) -> Database {
        let db = Database::new("big");
        let schema = RelSchema::of(&[
            ("k", SqlType::Int),
            ("g", SqlType::Int),
            ("v", SqlType::Float),
        ])
        .shared();
        let t = Table::new("wide", schema).with_primary_key(&["k"]).unwrap();
        t.insert(
            (0..rows)
                .map(|i| {
                    vec![
                        Value::Int(i as i64),
                        Value::Int((i % 97) as i64),
                        Value::Float(i as f64 * 0.5),
                    ]
                })
                .collect(),
        )
        .unwrap();
        db.create_table(t);
        db
    }

    #[test]
    fn batching_pays_routes_by_cardinality() {
        use crate::query::planner::{batching_pays, BATCH_CROSSOVER_ROWS};
        let small = db();
        let big = big_db(BATCH_CROSSOVER_ROWS + 100);
        // joins always batch, whatever the size
        let join =
            Plan::scan("customer").hash_join(Plan::scan("city"), vec![2], vec![0], JoinKind::Inner);
        assert!(batching_pays(&join, &small));
        // small join-free aggregates keep streaming…
        let small_agg = Plan::scan("customer").aggregate(vec![2], vec![AggExpr::count_star("n")]);
        assert!(!batching_pays(&small_agg, &small));
        // …but an aggregate over a crossover-sized input batches
        let big_agg = Plan::scan("wide").aggregate(vec![1], vec![AggExpr::count_star("n")]);
        assert!(batching_pays(&big_agg, &big));
        // distinct unions batch on the *combined* input estimate
        let big_distinct = Plan::UnionDistinct {
            inputs: vec![Plan::scan("wide"), Plan::scan("wide")],
            key: Some(vec![1]),
        };
        assert!(batching_pays(&big_distinct, &big));
        let small_distinct = Plan::UnionDistinct {
            inputs: vec![Plan::scan("customer"), Plan::scan("customer")],
            key: Some(vec![0]),
        };
        assert!(!batching_pays(&small_distinct, &small));
        // a plain scan never batches, however large
        assert!(!batching_pays(&Plan::scan("wide"), &big));
    }

    #[test]
    fn large_join_free_aggregate_agrees_across_modes() {
        use crate::query::planner::BATCH_CROSSOVER_ROWS;
        let db = big_db(BATCH_CROSSOVER_ROWS + 17);
        let plan = Plan::scan("wide")
            .aggregate(
                vec![1],
                vec![
                    AggExpr::count_star("n"),
                    AggExpr::new(AggFunc::Sum, Expr::col(0), "sk"),
                    AggExpr::new(AggFunc::Sum, Expr::col(2), "sv"),
                    AggExpr::new(AggFunc::Min, Expr::col(2), "lo"),
                    AggExpr::new(AggFunc::Max, Expr::col(2), "hi"),
                ],
            )
            .sort(vec![0]);
        let rel = run_all_modes(&plan, &db);
        assert_eq!(rel.len(), 97);
        // exact integer sums: group g holds keys g, g+97, g+194, …
        let n0 = rel.rows[0][1].to_int().unwrap();
        assert_eq!(rel.rows[0][0], Value::Int(0));
        let expect: i64 = (0..n0).map(|i| i * 97).sum();
        assert_eq!(rel.rows[0][2], Value::Int(expect));
    }

    #[test]
    fn union_mixing_join_and_scan_inputs_routes_per_input() {
        // one join-bearing input (batches) + one tiny scan input (streams):
        // Auto routes each root-level union input independently and must
        // still produce both executors' shared emission order
        let db = db();
        let join_side = Plan::scan("customer")
            .hash_join(Plan::scan("city"), vec![2], vec![0], JoinKind::Inner)
            .project(vec![
                ProjExpr::new(Expr::col(0), "k", SqlType::Int),
                ProjExpr::new(Expr::col(1), "name", SqlType::Str),
            ]);
        let scan_side = Plan::scan("customer").project(vec![
            ProjExpr::new(Expr::col(0), "k", SqlType::Int),
            ProjExpr::new(Expr::col(1), "name", SqlType::Str),
        ]);
        let union_all = Plan::UnionAll(vec![join_side.clone(), scan_side.clone()]);
        let rel = run_all_modes(&union_all, &db);
        assert_eq!(rel.len(), 3 + 4);
        let distinct = Plan::UnionDistinct {
            inputs: vec![join_side, scan_side],
            key: Some(vec![0]),
        };
        let rel = run_all_modes(&distinct, &db);
        assert_eq!(rel.len(), 4); // keys 1-4, first-seen from the join side
        assert_eq!(rel.rows[0][0], Value::Int(1));
    }

    #[test]
    fn ablation_toggles_preserve_results() {
        // the bench-only ablations must not change semantics, only layout
        let db = db();
        let plan = Plan::scan("customer")
            .hash_join(Plan::scan("city"), vec![2], vec![0], JoinKind::Inner)
            .aggregate(vec![4], vec![AggExpr::count_star("n")]);
        let base = execute(&plan, &db, ExecMode::Vectorized).unwrap();
        ablate_boxed_columns(true);
        ablate_row_keys(true);
        let ablated = execute(&plan, &db, ExecMode::Vectorized).unwrap();
        ablate_boxed_columns(false);
        ablate_row_keys(false);
        assert_eq!(base.rows, ablated.rows);

        // the boxed-probe layout ablation only fires on index-join-only
        // plans; the planner turns this join into an IndexJoin (city pk)
        let plan = Plan::scan("customer")
            .hash_join(Plan::scan("city"), vec![2], vec![0], JoinKind::Inner)
            .sort(vec![0]);
        let opt = crate::query::planner::optimize(plan, &db).unwrap();
        let base = execute(&opt, &db, ExecMode::Vectorized).unwrap();
        ablate_boxed_probe(true);
        let ablated = execute(&opt, &db, ExecMode::Vectorized).unwrap();
        ablate_boxed_probe(false);
        assert_eq!(base.rows, ablated.rows);
    }

    #[test]
    fn default_mode_is_process_global() {
        assert_eq!(default_mode(), ExecMode::Auto);
        set_default_mode(ExecMode::Vectorized);
        assert_eq!(default_mode(), ExecMode::Vectorized);
        set_default_mode(ExecMode::Auto);
        assert_eq!(default_mode(), ExecMode::Auto);
    }
}
