//! Rule-based plan optimizer.
//!
//! Five rewrites, applied bottom-up:
//!
//! 1. **Predicate pushdown** — `Filter` over `Scan` merges into the scan's
//!    predicate (enabling index probes inside the table); `Filter` over
//!    `Filter` merges into a conjunction; filters over joins are split into
//!    left-only / right-only / residual conjuncts and pushed to the inputs.
//! 2. **Projection pushdown** — `Project` consisting purely of column
//!    references over a `Scan` becomes the scan's projection list.
//! 3. **Union flattening** — nested `UnionAll` inputs are spliced inline.
//! 4. **Index-join selection** — a `HashJoin` whose one side is a base-table
//!    scan with an index covering its join keys becomes an `IndexJoin`: the
//!    other side streams through index probes and the scanned side is never
//!    materialized.
//! 5. **Top-K** — `Limit` over `Sort` becomes a bounded partial sort
//!    (`TopK`); stacked `Limit`s merge.
//!
//! The FedDBMS reference implementation runs all relational work through
//! this planner; the `bench_ablation` benchmark measures its effect (the
//! paper attributes part of System A's behaviour to relational operators
//! being "well-optimized" while XML functions were not).

use crate::catalog::Database;
use crate::error::StoreResult;
use crate::expr::Expr;
use crate::query::plan::{JoinKind, Plan};

/// Optimize a plan. `db` is used for schema/arity information only.
pub fn optimize(plan: Plan, db: &Database) -> StoreResult<Plan> {
    rewrite(plan, db)
}

fn rewrite(plan: Plan, db: &Database) -> StoreResult<Plan> {
    // Recurse first (bottom-up).
    let plan = match plan {
        Plan::Filter { input, predicate } => {
            let input = rewrite(*input, db)?;
            push_filter(input, predicate, db)?
        }
        Plan::Project { input, exprs } => {
            let input = rewrite(*input, db)?;
            push_project(input, exprs, db)?
        }
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            kind,
        } => {
            let left = rewrite(*left, db)?;
            let right = rewrite(*right, db)?;
            select_index_join(left, right, left_keys, right_keys, kind, db)?
        }
        Plan::IndexJoin {
            probe,
            table,
            probe_keys,
            inner_keys,
            predicate,
            projection,
            kind,
            probe_is_left,
        } => Plan::IndexJoin {
            probe: Box::new(rewrite(*probe, db)?),
            table,
            probe_keys,
            inner_keys,
            predicate,
            projection,
            kind,
            probe_is_left,
        },
        Plan::UnionAll(inputs) => {
            let mut flat = Vec::with_capacity(inputs.len());
            for i in inputs {
                match rewrite(i, db)? {
                    Plan::UnionAll(nested) => flat.extend(nested),
                    other => flat.push(other),
                }
            }
            Plan::UnionAll(flat)
        }
        Plan::UnionDistinct { inputs, key } => Plan::UnionDistinct {
            inputs: inputs
                .into_iter()
                .map(|i| rewrite(i, db))
                .collect::<StoreResult<Vec<_>>>()?,
            key,
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => Plan::Aggregate {
            input: Box::new(rewrite(*input, db)?),
            group_by,
            aggs,
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(rewrite(*input, db)?),
            keys,
        },
        Plan::Limit { input, n } => match rewrite(*input, db)? {
            // LIMIT over SORT: bounded partial sort instead of full sort
            Plan::Sort { input, keys } => Plan::TopK { input, keys, n },
            Plan::Limit { input, n: m } => Plan::Limit { input, n: n.min(m) },
            Plan::TopK { input, keys, n: m } => Plan::TopK {
                input,
                keys,
                n: n.min(m),
            },
            other => Plan::Limit {
                input: Box::new(other),
                n,
            },
        },
        Plan::TopK { input, keys, n } => Plan::TopK {
            input: Box::new(rewrite(*input, db)?),
            keys,
            n,
        },
        leaf => leaf,
    };
    Ok(plan)
}

/// Push a filter predicate into `input` where possible.
fn push_filter(input: Plan, predicate: Expr, db: &Database) -> StoreResult<Plan> {
    match input {
        Plan::Scan {
            table,
            predicate: existing,
            projection,
        } => {
            let merged = match existing {
                Some(e) => e.and(predicate),
                None => predicate,
            };
            Ok(Plan::Scan {
                table,
                predicate: Some(merged),
                projection,
            })
        }
        Plan::Filter {
            input,
            predicate: inner,
        } => {
            // merge and retry pushdown on the combined predicate
            push_filter(*input, inner.and(predicate), db)
        }
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            kind,
        } => {
            let left_width = left.schema(db)?.len();
            let conjuncts = split_conjuncts(predicate);
            let mut left_preds = Vec::new();
            let mut right_preds = Vec::new();
            let mut residual = Vec::new();
            for c in conjuncts {
                let mut cols = Vec::new();
                c.referenced_columns(&mut cols);
                if cols.iter().all(|&i| i < left_width) {
                    left_preds.push(c);
                } else if cols.iter().all(|&i| i >= left_width)
                    && kind == crate::query::plan::JoinKind::Inner
                {
                    // only safe to push right-side predicates for inner joins
                    right_preds.push(c.remap_columns(&|i| i - left_width));
                } else {
                    residual.push(c);
                }
            }
            let mut l = *left;
            if let Some(p) = conjoin(left_preds) {
                l = push_filter(l, p, db)?;
            }
            let mut r = *right;
            if let Some(p) = conjoin(right_preds) {
                r = push_filter(r, p, db)?;
            }
            let join = Plan::HashJoin {
                left: Box::new(l),
                right: Box::new(r),
                left_keys,
                right_keys,
                kind,
            };
            Ok(match conjoin(residual) {
                Some(p) => Plan::Filter {
                    input: Box::new(join),
                    predicate: p,
                },
                None => join,
            })
        }
        Plan::UnionAll(inputs) => {
            // filters distribute over union
            let pushed: StoreResult<Vec<Plan>> = inputs
                .into_iter()
                .map(|i| push_filter(i, predicate.clone(), db))
                .collect();
            Ok(Plan::UnionAll(pushed?))
        }
        Plan::IndexJoin {
            probe,
            table,
            probe_keys,
            inner_keys,
            predicate: inner_pred,
            projection,
            kind,
            probe_is_left,
        } => {
            // mirror the HashJoin split: probe-only conjuncts push into the
            // probe input, inner-only conjuncts (inner joins only) merge
            // into the join's residual predicate, the rest stays above
            let probe_w = probe.schema(db)?.len();
            let inner_w = match &projection {
                Some(p) => p.len(),
                None => db.table(&table)?.schema.len(),
            };
            let (probe_lo, inner_lo) = if probe_is_left {
                (0, probe_w)
            } else {
                (inner_w, 0)
            };
            let mut probe_preds = Vec::new();
            let mut inner_preds = Vec::new();
            let mut residual = Vec::new();
            for c in split_conjuncts(predicate) {
                let mut cols = Vec::new();
                c.referenced_columns(&mut cols);
                if cols
                    .iter()
                    .all(|&i| i >= probe_lo && i < probe_lo + probe_w)
                {
                    probe_preds.push(c.remap_columns(&|i| i - probe_lo));
                } else if cols
                    .iter()
                    .all(|&i| i >= inner_lo && i < inner_lo + inner_w)
                    && kind == crate::query::plan::JoinKind::Inner
                {
                    // the join evaluates its residual on the *base* row
                    // before the scan projection applies, so remap output
                    // positions back through the projection
                    inner_preds.push(c.remap_columns(&|i| match &projection {
                        Some(p) => p[i - inner_lo],
                        None => i - inner_lo,
                    }));
                } else {
                    residual.push(c);
                }
            }
            let mut p = *probe;
            if let Some(pred) = conjoin(probe_preds) {
                p = push_filter(p, pred, db)?;
            }
            let merged = match (inner_pred, conjoin(inner_preds)) {
                (Some(a), Some(b)) => Some(a.and(b)),
                (a, b) => a.or(b),
            };
            let join = Plan::IndexJoin {
                probe: Box::new(p),
                table,
                probe_keys,
                inner_keys,
                predicate: merged,
                projection,
                kind,
                probe_is_left,
            };
            Ok(match conjoin(residual) {
                Some(r) => Plan::Filter {
                    input: Box::new(join),
                    predicate: r,
                },
                None => join,
            })
        }
        other => Ok(Plan::Filter {
            input: Box::new(other),
            predicate,
        }),
    }
}

/// Push a pure-column projection into a scan. Only fires when every output
/// is a bare column reference that keeps its input name — a rename must stay
/// in a `Project` node because scan projections carry base-table column
/// metadata. The table scan evaluates its predicate on the *full* row before
/// projecting, so dropping predicate columns from the output is safe.
fn push_project(
    input: Plan,
    exprs: Vec<crate::query::plan::ProjExpr>,
    db: &Database,
) -> StoreResult<Plan> {
    if let Plan::Scan {
        table,
        predicate,
        projection: None,
    } = &input
    {
        let schema = db.table(table)?.schema.clone();
        let pure: Option<Vec<usize>> = exprs
            .iter()
            .map(|p| match p.expr {
                Expr::Col(i) if schema.column(i).name == p.column.name => Some(i),
                _ => None,
            })
            .collect();
        if let Some(cols) = pure {
            return Ok(Plan::Scan {
                table: table.clone(),
                predicate: predicate.clone(),
                projection: Some(cols),
            });
        }
    }
    Ok(Plan::Project {
        input: Box::new(input),
        exprs,
    })
}

/// Replace a hash join with an index-nested-loop join when one side is a
/// base-table scan whose join keys are covered by an index on that table.
/// The scan's predicate/projection travel into the join as a residual
/// filter / output projection applied per probed row, so the indexed side
/// is never materialized. LEFT joins only consider the right side (the
/// left side must remain the probe so unmatched rows can be null-padded).
fn select_index_join(
    left: Plan,
    right: Plan,
    left_keys: Vec<usize>,
    right_keys: Vec<usize>,
    kind: JoinKind,
    db: &Database,
) -> StoreResult<Plan> {
    if let Some(inner_keys) = index_candidate(&right, &right_keys, &left, db)? {
        let Plan::Scan {
            table,
            predicate,
            projection,
        } = right
        else {
            unreachable!("candidate is a scan");
        };
        return Ok(Plan::IndexJoin {
            probe: Box::new(left),
            table,
            probe_keys: left_keys,
            inner_keys,
            predicate,
            projection,
            kind,
            probe_is_left: true,
        });
    }
    if kind == JoinKind::Inner {
        if let Some(inner_keys) = index_candidate(&left, &left_keys, &right, db)? {
            let Plan::Scan {
                table,
                predicate,
                projection,
            } = left
            else {
                unreachable!("candidate is a scan");
            };
            return Ok(Plan::IndexJoin {
                probe: Box::new(right),
                table,
                probe_keys: right_keys,
                inner_keys,
                predicate,
                projection,
                kind,
                probe_is_left: false,
            });
        }
    }
    Ok(Plan::HashJoin {
        left: Box::new(left),
        right: Box::new(right),
        left_keys,
        right_keys,
        kind,
    })
}

/// Check whether `inner` qualifies as the indexed side of an index join:
/// a base-table scan whose join keys (mapped through its projection back to
/// base-table positions) are covered by an index. Returns the base-table
/// key positions. Refused when the probe side also reads the same table —
/// the probe phase holds the inner table's read lock for its whole
/// duration, and re-entrant read locks can deadlock against a writer.
fn index_candidate(
    inner: &Plan,
    keys: &[usize],
    probe: &Plan,
    db: &Database,
) -> StoreResult<Option<Vec<usize>>> {
    let Plan::Scan {
        table, projection, ..
    } = inner
    else {
        return Ok(None);
    };
    let base_keys: Vec<usize> = match projection {
        Some(p) => {
            let mut v = Vec::with_capacity(keys.len());
            for &k in keys {
                match p.get(k) {
                    Some(&c) => v.push(c),
                    None => return Ok(None),
                }
            }
            v
        }
        None => keys.to_vec(),
    };
    if base_keys.is_empty() || !db.table(table)?.covering_index(&base_keys) {
        return Ok(None);
    }
    let mut probe_tables = Vec::new();
    collect_base_tables(probe, &mut probe_tables);
    if probe_tables.iter().any(|t| t == table) {
        return Ok(None);
    }
    Ok(Some(base_keys))
}

/// Collect the names of every base table a plan reads.
fn collect_base_tables(plan: &Plan, out: &mut Vec<String>) {
    match plan {
        Plan::Scan { table, .. } => out.push(table.clone()),
        Plan::IndexJoin { probe, table, .. } => {
            out.push(table.clone());
            collect_base_tables(probe, out);
        }
        Plan::Values(_) => {}
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. }
        | Plan::TopK { input, .. } => collect_base_tables(input, out),
        Plan::HashJoin { left, right, .. } => {
            collect_base_tables(left, out);
            collect_base_tables(right, out);
        }
        Plan::UnionAll(inputs) => {
            for i in inputs {
                collect_base_tables(i, out);
            }
        }
        Plan::UnionDistinct { inputs, .. } => {
            for i in inputs {
                collect_base_tables(i, out);
            }
        }
    }
}

/// Split an AND tree into its conjuncts.
fn split_conjuncts(e: Expr) -> Vec<Expr> {
    match e {
        Expr::And(a, b) => {
            let mut v = split_conjuncts(*a);
            v.extend(split_conjuncts(*b));
            v
        }
        other => vec![other],
    }
}

/// Rebuild a conjunction from parts.
fn conjoin(mut parts: Vec<Expr>) -> Option<Expr> {
    let first = if parts.is_empty() {
        return None;
    } else {
        parts.remove(0)
    };
    Some(parts.into_iter().fold(first, |acc, p| acc.and(p)))
}

/// Estimated input size above which the batch executor's per-chunk setup
/// amortizes on *join-free* plans. Measured by the criterion
/// `batch_aggregate` microbench: batch aggregation crosses over the
/// streaming row loop at roughly 32k input rows (see PERFORMANCE.md).
pub(crate) const BATCH_CROSSOVER_ROWS: usize = 32_768;

/// Whether `ExecMode::Auto` should route this (already optimized) plan to
/// the vectorized batch executor.
///
/// Join-bearing plans always batch: gather columns forward the probe side
/// of every join level as one shared `u32` index vector (~40% on the
/// nine-way P14 chain). Join-free plans batch only when the planner's
/// cardinality estimate says the input is large enough to amortize chunk
/// setup: aggregates whose input clears [`BATCH_CROSSOVER_ROWS`], and
/// distinct unions whose combined input does. Small join-free plans — the
/// few-hundred-row point scans and refresh aggregates the E1/E2 processes
/// issue at d=0.05 — keep streaming, where the zero-setup row loop wins.
pub(crate) fn batching_pays(plan: &Plan, db: &Database) -> bool {
    match plan {
        Plan::HashJoin { .. } | Plan::IndexJoin { .. } => true,
        Plan::Scan { .. } | Plan::Values(_) => false,
        Plan::Aggregate { input, .. } => {
            batching_pays(input, db) || input.estimate_rows(db) >= BATCH_CROSSOVER_ROWS
        }
        Plan::UnionDistinct { inputs, .. } => {
            inputs.iter().any(|i| batching_pays(i, db))
                || inputs.iter().map(|i| i.estimate_rows(db)).sum::<usize>() >= BATCH_CROSSOVER_ROWS
        }
        Plan::UnionAll(inputs) => inputs.iter().any(|i| batching_pays(i, db)),
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. }
        | Plan::TopK { input, .. } => batching_pays(input, db),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::plan::{JoinKind, ProjExpr};
    use crate::schema::RelSchema;
    use crate::table::Table;
    use crate::value::{SqlType, Value};

    fn db() -> Database {
        let db = Database::new("t");
        let s = RelSchema::of(&[("a", SqlType::Int), ("b", SqlType::Int)]).shared();
        db.create_table(Table::new("x", s.clone()));
        db.create_table(Table::new("y", s));
        db
    }

    #[test]
    fn filter_merges_into_scan() {
        let db = db();
        let plan = Plan::scan("x").filter(Expr::col(0).gt(Expr::lit(1)));
        let opt = optimize(plan, &db).unwrap();
        match opt {
            Plan::Scan {
                predicate: Some(_), ..
            } => {}
            other => panic!("expected pushed scan, got {other:?}"),
        }
    }

    #[test]
    fn stacked_filters_merge() {
        let db = db();
        let plan = Plan::scan("x")
            .filter(Expr::col(0).gt(Expr::lit(1)))
            .filter(Expr::col(1).lt(Expr::lit(9)));
        let opt = optimize(plan, &db).unwrap();
        assert!(matches!(
            opt,
            Plan::Scan {
                predicate: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn join_filter_splits() {
        let db = db();
        // x(a,b) join y(a,b): filter on x.a AND y.b AND cross-condition
        let pred = Expr::col(0)
            .gt(Expr::lit(1)) // left-only
            .and(Expr::col(3).lt(Expr::lit(5))) // right-only (col 3 = y.b)
            .and(Expr::col(0).eq(Expr::col(2))); // residual
        let plan = Plan::scan("x")
            .hash_join(Plan::scan("y"), vec![0], vec![0], JoinKind::Inner)
            .filter(pred);
        let opt = optimize(plan, &db).unwrap();
        // expect Filter(residual) over Join(Scan(pred), Scan(pred))
        match opt {
            Plan::Filter { input, .. } => match *input {
                Plan::HashJoin { left, right, .. } => {
                    assert!(matches!(
                        *left,
                        Plan::Scan {
                            predicate: Some(_),
                            ..
                        }
                    ));
                    assert!(matches!(
                        *right,
                        Plan::Scan {
                            predicate: Some(_),
                            ..
                        }
                    ));
                }
                other => panic!("expected join, got {other:?}"),
            },
            other => panic!("expected residual filter, got {other:?}"),
        }
    }

    #[test]
    fn left_join_keeps_right_filter_above() {
        let db = db();
        let pred = Expr::col(3).lt(Expr::lit(5)); // right-only
        let plan = Plan::scan("x")
            .hash_join(Plan::scan("y"), vec![0], vec![0], JoinKind::Left)
            .filter(pred);
        let opt = optimize(plan, &db).unwrap();
        // must NOT push below a left join
        assert!(matches!(opt, Plan::Filter { .. }));
    }

    #[test]
    fn projection_pushes_into_scan() {
        let db = db();
        let schema = db.table("x").unwrap().schema.clone();
        let plan =
            Plan::scan("x").project(vec![ProjExpr::passthrough(&schema, "b", None).unwrap()]);
        let opt = optimize(plan, &db).unwrap();
        assert!(matches!(
            opt,
            Plan::Scan {
                projection: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn union_flattens_and_distributes_filter() {
        let db = db();
        let plan = Plan::UnionAll(vec![
            Plan::UnionAll(vec![Plan::scan("x"), Plan::scan("y")]),
            Plan::scan("x"),
        ])
        .filter(Expr::col(0).eq(Expr::lit(Value::Int(1))));
        let opt = optimize(plan, &db).unwrap();
        match opt {
            Plan::UnionAll(inputs) => {
                assert_eq!(inputs.len(), 3);
                for i in inputs {
                    assert!(matches!(
                        i,
                        Plan::Scan {
                            predicate: Some(_),
                            ..
                        }
                    ));
                }
            }
            other => panic!("expected flattened union, got {other:?}"),
        }
    }
}
