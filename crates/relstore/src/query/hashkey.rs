//! Vectorized key hashing and hash-first key tables.
//!
//! Both pipelined executors key their hash joins, hash aggregates and
//! distinct unions through this module instead of allocating a
//! `Vec<Value>` per row:
//!
//! * [`hash_value`] / [`combine`] produce one splitmix-mixed `u64` per
//!   key, built column-by-column (the batch executor hashes a whole key
//!   column per chunk in one pass; the streaming executor folds the key
//!   columns of each row view in place);
//! * [`KeyIndex`] is a chained hash table mapping those `u64`s to dense
//!   row/group ids. Probes compare candidate entries against the *stored*
//!   rows (hash-first comparison), so a key is only ever materialized
//!   when it is inserted — never on a lookup hit.
//!
//! The hash must be consistent with [`Value`]'s equality (`total_cmp`):
//! `Int(3)` and `Float(3.0)` compare equal, so both numeric variants hash
//! their `f64` bit pattern — the same equivalence `Value`'s `Hash` impl
//! encodes. Collisions are resolved by full value comparison, so hash
//! quality only affects speed, never results.

use crate::value::Value;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Seed every multi-column key hash starts from (an arbitrary odd
/// constant; distinct from [`NULL_HASH`] so a zero-column key is stable).
pub(crate) const KEY_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// The hash of SQL NULL. NULL keys never *join*, but they are legitimate
/// group-by / distinct keys, so they need a stable hash like any value.
pub(crate) const NULL_HASH: u64 = 0x517C_C1B7_2722_0A95;

/// Finalizer from the splitmix64 generator: cheap, and good enough
/// avalanche that the chained table can use the output bits directly.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash one numeric value through its `f64` bit pattern — the equivalence
/// class `total_cmp` uses for cross-type numeric equality.
#[inline]
pub(crate) fn hash_num(f: f64) -> u64 {
    splitmix64(0x2000_0000_0000_0000 ^ f.to_bits())
}

/// Hash string contents (FNV-1a folded through the splitmix finalizer).
#[inline]
pub(crate) fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix64(0x3000_0000_0000_0000 ^ h)
}

/// Hash of one key component. Equal values (under [`Value::total_cmp`])
/// hash equally; in particular `Int(i)` hashes as `Float(i as f64)` does.
#[inline]
pub(crate) fn hash_value(v: &Value) -> u64 {
    match v {
        Value::Null => NULL_HASH,
        Value::Bool(b) => splitmix64(0x1000_0000_0000_0000 | *b as u64),
        Value::Int(i) => hash_num(*i as f64),
        Value::Float(f) => hash_num(*f),
        Value::Str(s) => hash_str(s),
        Value::Date(d) => splitmix64(0x4000_0000_0000_0000 ^ (*d as u32 as u64)),
    }
}

/// Fold one column's hash into a multi-column key hash. Order-sensitive,
/// so `(a, b)` and `(b, a)` keys rarely collide (collisions are still
/// resolved by comparison).
#[inline]
pub(crate) fn combine(acc: u64, h: u64) -> u64 {
    splitmix64(acc.rotate_left(29) ^ h)
}

/// Hash an already-materialized key (build rows, oracle-side helpers).
pub(crate) fn hash_values(key: &[Value]) -> u64 {
    let mut h = KEY_SEED;
    for v in key {
        h = combine(h, hash_value(v));
    }
    h
}

/// Identity hasher for keys that are already splitmix-mixed `u64`s —
/// avoids re-hashing through SipHash in the [`KeyIndex`] head map.
#[derive(Default)]
pub(crate) struct PreMixed(u64);

impl Hasher for PreMixed {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }

    fn write(&mut self, bytes: &[u8]) {
        // only u64 keys are expected; fold bytes defensively
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ b as u64;
        }
    }
}

/// A chained hash-first key table: maps a precomputed `u64` key hash to
/// the dense ids of all entries sharing it. The caller owns the entry
/// payloads (build rows, group keys, distinct rows) and resolves hash
/// collisions by comparing against them — entries here are just ids.
///
/// Chains yield ids in **reverse insertion order**; callers that need
/// matches in insertion order (hash-join build sides, where output order
/// is probe × build insertion) insert ids in descending order so the
/// chain walks ascending.
pub(crate) struct KeyIndex {
    /// hash → 1 + id of the chain head (0 = empty, so the map stays dense).
    heads: HashMap<u64, u32, BuildHasherDefault<PreMixed>>,
    /// id → 1 + id of the next chain entry (0 = end of chain).
    next: Vec<u32>,
}

impl KeyIndex {
    pub(crate) fn with_capacity(n: usize) -> KeyIndex {
        KeyIndex {
            heads: HashMap::with_capacity_and_hasher(n, BuildHasherDefault::default()),
            next: Vec::with_capacity(n),
        }
    }

    /// Append the next sequential entry (id = number of entries so far)
    /// under `h` and return its id. Used by aggregates and distinct sets,
    /// where at most one chain entry ever compares equal to a probe.
    pub(crate) fn push(&mut self, h: u64) -> u32 {
        let id = self.next.len() as u32;
        let prev = self.heads.insert(h, id + 1).unwrap_or(0);
        self.next.push(prev);
        id
    }

    /// Insert an entry with a caller-chosen id (growing the chain table as
    /// needed). Joins insert build rows in *descending* id order so
    /// [`KeyIndex::candidates`] yields them ascending.
    pub(crate) fn insert_at(&mut self, h: u64, id: u32) {
        let slot = id as usize;
        if self.next.len() <= slot {
            self.next.resize(slot + 1, 0);
        }
        let prev = self.heads.insert(h, id + 1).unwrap_or(0);
        if let Some(n) = self.next.get_mut(slot) {
            *n = prev;
        }
    }

    /// All entry ids whose key hashed to `h` (possibly differing keys —
    /// the caller compares against its stored payloads).
    pub(crate) fn candidates(&self, h: u64) -> Candidates<'_> {
        Candidates {
            next: &self.next,
            cur: self.heads.get(&h).copied().unwrap_or(0),
        }
    }
}

/// Iterator over one hash chain of a [`KeyIndex`].
pub(crate) struct Candidates<'a> {
    next: &'a [u32],
    cur: u32,
}

impl Iterator for Candidates<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.cur == 0 {
            return None;
        }
        let id = self.cur - 1;
        self.cur = self.next.get(id as usize).copied().unwrap_or(0);
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_float_hash_equally() {
        assert_eq!(hash_value(&Value::Int(3)), hash_value(&Value::Float(3.0)));
        assert_eq!(hash_value(&Value::Int(-7)), hash_value(&Value::Float(-7.0)));
        // equal strings across allocations hash equally
        assert_eq!(
            hash_value(&Value::str("abc")),
            hash_value(&Value::str("abc"))
        );
        // distinct types with equal payload bits do not collide trivially
        assert_ne!(hash_value(&Value::Bool(true)), hash_value(&Value::Int(1)));
        assert_ne!(hash_value(&Value::Date(5)), hash_value(&Value::Int(5)));
    }

    #[test]
    fn key_index_chains_ascending_when_inserted_descending() {
        let mut ix = KeyIndex::with_capacity(4);
        let h = 42u64;
        for id in (0..4u32).rev() {
            ix.insert_at(h, id);
        }
        let got: Vec<u32> = ix.candidates(h).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(ix.candidates(7).count(), 0);
    }

    #[test]
    fn key_index_push_assigns_sequential_ids() {
        let mut ix = KeyIndex::with_capacity(2);
        assert_eq!(ix.push(1), 0);
        assert_eq!(ix.push(2), 1);
        assert_eq!(ix.push(1), 2);
        let got: Vec<u32> = ix.candidates(1).collect();
        assert_eq!(got, vec![2, 0]); // newest first — fine for unique keys
    }
}
