//! Columnar batch executor ([`ExecMode::Vectorized`]).
//!
//! Plans run batch-at-a-time over [`Chunk`]s of ~[`CHUNK_ROWS`] rows. A
//! chunk is a vector of [`Col`]umns plus an optional *selection vector* of
//! surviving row indices. Columns come in three representations:
//!
//! * `Dense` — owned values, one per physical row (scan/aggregate output);
//! * `Shared` — the same, behind an `Arc` (a column forwarded untouched);
//! * `Gather` — a shared source column plus a shared index vector: the
//!   value at row `i` is `src[idx[i]]`.
//!
//! Column *storage* ([`ColData`]) is type-specialized: scans derive the
//! layout from the catalog schema, so an `INT` column is a `Vec<i64>`, a
//! `FLOAT` column a `Vec<f64>` and a `STR` column a `Vec<Arc<str>>`, each
//! with an optional validity bitmap ([`NullMask`]) for NULLs. Aggregate
//! accumulators and key hashing then run over unboxed primitive slices.
//! Because the storage layer accepts *widened* values (an `Int` is legal
//! in a `FLOAT` column, a `Bool` in an `INT` column) and those values must
//! re-emit byte-identically, the builders are adaptive: a value the typed
//! layout cannot represent demotes the column to boxed `Vec<Value>`
//! storage for that chunk ([`ColBuilder`]).
//!
//! `Gather` is the late-materialization trick that makes join chains
//! linear: a join emits its probe-side columns as gathers over the probe
//! chunk (one `Arc<Vec<u32>>` shared by every probe column) instead of
//! re-copying the accumulated prefix into fresh columns at every level.
//! Chained joins *compose* index vectors — u32 arithmetic, no `Value`
//! clones — and a hash join's build side is columnarized once and gathered
//! the same way. Values are cloned exactly once, at the final
//! chunk-to-rows boundary. Filters and distinct-unions never copy either —
//! they narrow the selection vector and pass the columns through.
//!
//! Hash joins, hash aggregates and distinct unions key through
//! `query::hashkey`: whole key columns are hashed per chunk into a
//! `Vec<u64>` (one pass per key column, splitmix-mixed), and probes walk a
//! chained [`KeyIndex`] comparing candidates against the *stored* build
//! rows / group keys — a key tuple is only materialized when it is first
//! inserted, never per probe row.
//!
//! The executor is a drop-in replacement for the streaming path over the
//! same optimized plans and must emit **byte-identical rows in the same
//! order** (the cross-mode digest gate depends on it):
//!
//! * hash joins emit probe order × build insertion order (build ids are
//!   inserted into the [`KeyIndex`] in descending order so chains walk
//!   ascending), build on the estimated-smaller side (LEFT builds right),
//!   NULL keys never join, LEFT pads with build-width NULLs;
//! * aggregates emit groups in first-seen order and a global aggregate
//!   over zero rows still yields one row;
//! * `UnionDistinct` keeps first occurrences; `TopK` breaks ties by input
//!   sequence ([`TopKEntry`]);
//! * all aggregate arithmetic goes through the shared [`AggState`]
//!   (exact-`i64` SUM with overflow fallback, compensated float sums);
//!   float MIN/MAX stay per-element — NaN makes "strictly less wins"
//!   non-transitive, so chunk-local reductions could change results.
//!
//! Hash and group tables are pre-sized from planner cardinality estimates
//! (table live counts at the leaves); aggregate inputs that are bare
//! column references skip expression dispatch; computed aggregate inputs
//! are evaluated column-at-a-time once per chunk through an [`EvalView`]
//! (typed columns materialize to `Value`s once per chunk for the shared
//! expression evaluator, boxed columns are borrowed in place).
//!
//! Each node publishes `relstore.batch.chunks.<op>` and
//! `relstore.batch.rows.<op>` counters next to the shared
//! `relstore.rows_out.<op>`; chunk fill rate is
//! `batch.rows / (batch.chunks × 1024)`. Join output chunks follow probe
//! chunk boundaries, so a high-fan-out join can emit chunks taller than
//! [`CHUNK_ROWS`]; consumers size off [`Chunk::live`], never the constant.

use crate::catalog::Database;
use crate::error::{StoreError, StoreResult};
use crate::expr::{Expr, RowAccess};
use crate::query::exec::{index_join_equivalent, plan_op, rows_counter, AggState, TopKEntry};
use crate::query::hashkey::{
    combine, hash_num, hash_str, hash_value, hash_values, KeyIndex, KEY_SEED, NULL_HASH,
};
use crate::query::plan::{AggFunc, JoinKind, Plan};
use crate::row::{sort_rows_by_columns, Relation, Row};
use crate::value::{SqlType, Value};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

#[allow(unused_imports)] // doc links
use crate::query::exec::ExecMode;

/// Target rows per [`Chunk`]. Large enough to amortize per-chunk operator
/// overhead, small enough that a chunk's columns stay cache-resident.
pub(crate) const CHUNK_ROWS: usize = 1024;

/// Bench-only ablation: when set, scans and values emit boxed
/// `Vec<Value>` columns even for typed schemas — isolates the
/// typed-storage win in the `batch_aggregate` microbench.
static ABLATE_BOXED_COLUMNS: AtomicBool = AtomicBool::new(false);

/// Bench-only ablation: when set, key hashing materializes a fresh
/// `Vec<Value>` key per row (the pre-vectorization behavior) instead of
/// hashing whole key columns per chunk. Results are identical; only the
/// allocation profile differs.
static ABLATE_ROW_KEYS: AtomicBool = AtomicBool::new(false);

/// Toggle the boxed-columns ablation (bench instrumentation, process-wide).
pub fn ablate_boxed_columns(on: bool) {
    ABLATE_BOXED_COLUMNS.store(on, Ordering::Relaxed);
}

/// Toggle the per-row key materialization ablation (bench instrumentation,
/// process-wide).
pub fn ablate_row_keys(on: bool) {
    ABLATE_ROW_KEYS.store(on, Ordering::Relaxed);
}

/// Bench-only ablation: when set, plans that [`prefers_boxed_probe`]
/// classifies as index-join-only skip typed column assembly and build
/// boxed `Value` columns directly. Measured at d=0.05 this is a ~15%
/// `index_join` span *pessimization* on the mtm engine (typed `Vec<i64>`
/// pushes beat `Value` clone traffic even when the sole consumer re-boxes
/// row-wise), which is why it is an ablation and not the default — see
/// ROADMAP "Close the index-join typed-column gap".
static ABLATE_BOXED_PROBE: AtomicBool = AtomicBool::new(false);

/// Toggle the boxed-probe layout ablation (bench instrumentation,
/// process-wide).
pub fn ablate_boxed_probe(on: bool) {
    ABLATE_BOXED_PROBE.store(on, Ordering::Relaxed);
}

fn boxed_probe_ablated() -> bool {
    ABLATE_BOXED_PROBE.load(Ordering::Relaxed)
}

fn boxed_ablated() -> bool {
    ABLATE_BOXED_COLUMNS.load(Ordering::Relaxed)
}

thread_local! {
    /// Query-scoped layout hint: when set, [`ColBuilder::for_type`] emits
    /// boxed `Value` columns regardless of the schema type. Entered by
    /// [`materialize_chunked`] under the [`ablate_boxed_probe`] toggle for
    /// plans whose every chunk consumer reads rows point-wise (see
    /// [`prefers_boxed_probe`]). Output bytes are identical either way —
    /// the builder's demotion invariant guarantees it.
    static BOXED_PROBE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn boxed_probe_scope() -> bool {
    BOXED_PROBE.with(|c| c.get())
}

/// RAII entry into the boxed-probe layout scope; restores the previous
/// state on drop (including the error path out of `drive`).
struct BoxedProbeScope {
    prev: bool,
}

impl BoxedProbeScope {
    fn enter() -> BoxedProbeScope {
        BoxedProbeScope {
            prev: BOXED_PROBE.with(|c| c.replace(true)),
        }
    }
}

impl Drop for BoxedProbeScope {
    fn drop(&mut self) {
        let prev = self.prev;
        BOXED_PROBE.with(|c| c.set(prev));
    }
}

/// Visit every node of a plan tree, parents before children.
fn walk_plan(plan: &Plan, f: &mut dyn FnMut(&Plan)) {
    f(plan);
    match plan {
        Plan::Scan { .. } | Plan::Values(_) => {}
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. }
        | Plan::TopK { input, .. } => walk_plan(input, f),
        Plan::HashJoin { left, right, .. } => {
            walk_plan(left, f);
            walk_plan(right, f);
        }
        Plan::IndexJoin { probe, .. } => walk_plan(probe, f),
        Plan::UnionAll(inputs) | Plan::UnionDistinct { inputs, .. } => {
            for p in inputs {
                walk_plan(p, f);
            }
        }
    }
}

/// True when typed column assembly collects no *vectorized* dividend: the
/// plan contains an [`Plan::IndexJoin`] (which reads its probe chunks one
/// row at a time via `gather_key`/`col_value` and never hashes probe
/// columns vectorized) and no operator that exploits typed storage — no
/// [`Plan::HashJoin`] or [`Plan::UnionDistinct`] (chunk-at-a-time key
/// hashing) and no [`Plan::Aggregate`] (typed accumulation fast paths).
///
/// This was the "skip typed assembly" candidate from the ROADMAP's
/// index-join item. Measurement refuted it: even for these plans typed
/// assembly is *cheaper* than boxing (a `Vec<i64>` push moves 8 bytes with
/// no refcount traffic; a boxed push clones a 24-byte `Value`), and the
/// probe loop's per-row re-box costs the same from either layout. The
/// predicate therefore only gates the [`ablate_boxed_probe`] measurement
/// toggle rather than a default behavior.
fn prefers_boxed_probe(plan: &Plan) -> bool {
    let mut index_join = false;
    let mut typed_consumer = false;
    walk_plan(plan, &mut |p| match p {
        Plan::IndexJoin { .. } => index_join = true,
        Plan::HashJoin { .. } | Plan::UnionDistinct { .. } | Plan::Aggregate { .. } => {
            typed_consumer = true;
        }
        _ => {}
    });
    index_join && !typed_consumer
}

fn row_keys_ablated() -> bool {
    ABLATE_ROW_KEYS.load(Ordering::Relaxed)
}

fn oob(c: usize) -> StoreError {
    StoreError::Eval(format!("column index {c} out of range"))
}

/// Validity bitmap for typed column storage: bit set = NULL at that row.
/// Absent (`None` in the column) means "no NULLs", so the all-valid fast
/// paths never touch it.
#[derive(Clone, Debug, Default)]
struct NullMask {
    words: Vec<u64>,
}

impl NullMask {
    fn set(&mut self, i: usize) {
        let w = i / 64;
        if self.words.len() <= w {
            self.words.resize(w + 1, 0);
        }
        if let Some(word) = self.words.get_mut(w) {
            *word |= 1u64 << (i % 64);
        }
    }

    fn is_null(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Number of NULLs among rows `0..n` (popcount — the COUNT fast path).
    fn count_nulls(&self, n: usize) -> usize {
        let mut total = 0usize;
        for (w, word) in self.words.iter().enumerate() {
            let lo = w * 64;
            if lo >= n {
                break;
            }
            let bits = n - lo;
            let masked = if bits >= 64 {
                *word
            } else {
                word & ((1u64 << bits) - 1)
            };
            total += masked.count_ones() as usize;
        }
        total
    }

    fn truncate(&mut self, n: usize) {
        self.words.truncate(n.div_ceil(64));
        if !n.is_multiple_of(64) {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << (n % 64)) - 1;
            }
        }
    }
}

/// The shared empty string typed NULL slots point at (never observable —
/// the mask shadows it).
fn empty_str() -> Arc<str> {
    static EMPTY: OnceLock<Arc<str>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::from("")).clone()
}

/// Physical storage of one column: boxed `Value`s, or an unboxed typed
/// vector plus a NULL bitmap. Typed layouts hold exactly one `Value`
/// variant (plus NULL); anything else lives in `Boxed` (see
/// [`ColBuilder`]'s demotion rule).
enum ColData {
    Boxed(Vec<Value>),
    I64(Vec<i64>, Option<NullMask>),
    F64(Vec<f64>, Option<NullMask>),
    Str(Vec<Arc<str>>, Option<NullMask>),
}

impl ColData {
    /// The value at row `i` (owned — typed layouts construct it), if in
    /// range. A masked row yields `Some(Value::Null)`.
    fn value(&self, i: usize) -> Option<Value> {
        match self {
            ColData::Boxed(v) => v.get(i).cloned(),
            ColData::I64(v, m) => v.get(i).map(|&x| {
                if masked(m, i) {
                    Value::Null
                } else {
                    Value::Int(x)
                }
            }),
            ColData::F64(v, m) => v.get(i).map(|&x| {
                if masked(m, i) {
                    Value::Null
                } else {
                    Value::Float(x)
                }
            }),
            ColData::Str(v, m) => v.get(i).map(|s| {
                if masked(m, i) {
                    Value::Null
                } else {
                    Value::Str(s.clone())
                }
            }),
        }
    }

    /// Does row `i` equal `v` under `Value` equality (`total_cmp`)? Typed
    /// rows compare through a stack-constructed `Value` so cross-type
    /// numeric equality (`Int(3) == Float(3.0)`) behaves identically to
    /// boxed storage.
    fn eq_value(&self, i: usize, v: &Value) -> bool {
        match self {
            ColData::Boxed(vals) => vals.get(i).is_some_and(|x| x == v),
            ColData::I64(vals, m) => vals.get(i).is_some_and(|&x| {
                if masked(m, i) {
                    v.is_null()
                } else {
                    Value::Int(x) == *v
                }
            }),
            ColData::F64(vals, m) => vals.get(i).is_some_and(|&x| {
                if masked(m, i) {
                    v.is_null()
                } else {
                    Value::Float(x) == *v
                }
            }),
            ColData::Str(vals, m) => vals.get(i).is_some_and(|s| {
                if masked(m, i) {
                    v.is_null()
                } else {
                    matches!(v, Value::Str(t) if **t == **s)
                }
            }),
        }
    }

    /// `(key hash, is_null)` of row `i` — out-of-range rows hash as NULL
    /// (they can never be emitted, so the flag only suppresses joins).
    fn hash_at(&self, i: usize) -> (u64, bool) {
        match self {
            ColData::Boxed(v) => match v.get(i) {
                Some(x) => (hash_value(x), x.is_null()),
                None => (NULL_HASH, true),
            },
            ColData::I64(v, m) => match v.get(i) {
                Some(&x) if !masked(m, i) => (hash_num(x as f64), false),
                _ => (NULL_HASH, true),
            },
            ColData::F64(v, m) => match v.get(i) {
                Some(&x) if !masked(m, i) => (hash_num(x), false),
                _ => (NULL_HASH, true),
            },
            ColData::Str(v, m) => match v.get(i) {
                Some(s) if !masked(m, i) => (hash_str(s), false),
                _ => (NULL_HASH, true),
            },
        }
    }

    /// Fold this column's hashes into `acc` (one slot per row, dense
    /// unselected chunks only) — the vectorized one-pass-per-key-column
    /// form of [`ColData::hash_at`]. `nulls[i]` is OR-set where row `i`
    /// is NULL.
    fn hash_into(&self, acc: &mut [u64], nulls: Option<&mut [bool]>) {
        match self {
            ColData::Boxed(vals) => match nulls {
                None => {
                    for (slot, v) in acc.iter_mut().zip(vals) {
                        *slot = combine(*slot, hash_value(v));
                    }
                }
                Some(flags) => {
                    for ((slot, flag), v) in acc.iter_mut().zip(flags.iter_mut()).zip(vals) {
                        *slot = combine(*slot, hash_value(v));
                        *flag |= v.is_null();
                    }
                }
            },
            ColData::I64(vals, m) => {
                hash_dense(vals, m.as_ref(), acc, nulls, |&x| hash_num(x as f64))
            }
            ColData::F64(vals, m) => hash_dense(vals, m.as_ref(), acc, nulls, |&x| hash_num(x)),
            ColData::Str(vals, m) => hash_dense(vals, m.as_ref(), acc, nulls, |s| hash_str(s)),
        }
    }

    /// Rebuild the column as owned `Value`s (the chunk-to-rows boundary).
    fn into_values(self) -> Vec<Value> {
        match self {
            ColData::Boxed(v) => v,
            ColData::I64(v, m) => v
                .into_iter()
                .enumerate()
                .map(|(i, x)| {
                    if masked(&m, i) {
                        Value::Null
                    } else {
                        Value::Int(x)
                    }
                })
                .collect(),
            ColData::F64(v, m) => v
                .into_iter()
                .enumerate()
                .map(|(i, x)| {
                    if masked(&m, i) {
                        Value::Null
                    } else {
                        Value::Float(x)
                    }
                })
                .collect(),
            ColData::Str(v, m) => v
                .into_iter()
                .enumerate()
                .map(|(i, s)| {
                    if masked(&m, i) {
                        Value::Null
                    } else {
                        Value::Str(s)
                    }
                })
                .collect(),
        }
    }

    /// Move the value at row `i` out (boxed storage leaves `Null` behind;
    /// typed storage copies — same cost either way). Used by the selective
    /// chunk-to-rows path, where the remainder is never read again.
    fn take(&mut self, i: usize) -> Option<Value> {
        match self {
            ColData::Boxed(v) => v
                .get_mut(i)
                .map(|slot| std::mem::replace(slot, Value::Null)),
            other => other.value(i),
        }
    }

    fn truncate(&mut self, n: usize) {
        match self {
            ColData::Boxed(v) => v.truncate(n),
            ColData::I64(v, m) => {
                v.truncate(n);
                if let Some(m) = m {
                    m.truncate(n);
                }
            }
            ColData::F64(v, m) => {
                v.truncate(n);
                if let Some(m) = m {
                    m.truncate(n);
                }
            }
            ColData::Str(v, m) => {
                v.truncate(n);
                if let Some(m) = m {
                    m.truncate(n);
                }
            }
        }
    }
}

/// One pass of vectorized key hashing over a typed dense column.
fn hash_dense<T>(
    vals: &[T],
    mask: Option<&NullMask>,
    acc: &mut [u64],
    nulls: Option<&mut [bool]>,
    hash_one: impl Fn(&T) -> u64,
) {
    match mask {
        None => {
            for (slot, v) in acc.iter_mut().zip(vals) {
                *slot = combine(*slot, hash_one(v));
            }
        }
        Some(m) => {
            for (i, (slot, v)) in acc.iter_mut().zip(vals).enumerate() {
                let h = if m.is_null(i) { NULL_HASH } else { hash_one(v) };
                *slot = combine(*slot, h);
            }
            if let Some(flags) = nulls {
                for (i, flag) in flags.iter_mut().enumerate() {
                    *flag |= m.is_null(i);
                }
            }
        }
    }
}

/// Adaptive column builder: starts in the layout the schema type names
/// and **demotes to boxed storage** the moment a value arrives that the
/// typed layout cannot re-emit byte-identically (a widened `Int` in a
/// `FLOAT` column, a `Bool` in an `INT` column). Demotion reconstructs the
/// exact `Value` sequence pushed so far, so output bytes never depend on
/// which layout a chunk ended up in.
enum ColBuilder {
    Boxed(Vec<Value>),
    I64(Vec<i64>, Option<NullMask>),
    F64(Vec<f64>, Option<NullMask>),
    Str(Vec<Arc<str>>, Option<NullMask>),
}

impl ColBuilder {
    fn for_type(ty: Option<SqlType>, cap: usize) -> ColBuilder {
        if boxed_ablated() || boxed_probe_scope() {
            return ColBuilder::Boxed(Vec::with_capacity(cap));
        }
        match ty {
            Some(SqlType::Int) => ColBuilder::I64(Vec::with_capacity(cap), None),
            Some(SqlType::Float) => ColBuilder::F64(Vec::with_capacity(cap), None),
            Some(SqlType::Str) => ColBuilder::Str(Vec::with_capacity(cap), None),
            _ => ColBuilder::Boxed(Vec::with_capacity(cap)),
        }
    }

    fn len(&self) -> usize {
        match self {
            ColBuilder::Boxed(v) => v.len(),
            ColBuilder::I64(v, _) => v.len(),
            ColBuilder::F64(v, _) => v.len(),
            ColBuilder::Str(v, _) => v.len(),
        }
    }

    /// Push `v` if the current layout represents it exactly.
    fn try_push(&mut self, v: &Value) -> bool {
        let n = self.len();
        match self {
            ColBuilder::Boxed(vals) => {
                vals.push(v.clone());
                true
            }
            ColBuilder::I64(vals, mask) => match v {
                Value::Int(x) => {
                    vals.push(*x);
                    true
                }
                Value::Null => {
                    vals.push(0);
                    mask.get_or_insert_with(NullMask::default).set(n);
                    true
                }
                _ => false,
            },
            ColBuilder::F64(vals, mask) => match v {
                Value::Float(x) => {
                    vals.push(*x);
                    true
                }
                Value::Null => {
                    vals.push(0.0);
                    mask.get_or_insert_with(NullMask::default).set(n);
                    true
                }
                _ => false,
            },
            ColBuilder::Str(vals, mask) => match v {
                Value::Str(s) => {
                    vals.push(s.clone());
                    true
                }
                Value::Null => {
                    vals.push(empty_str());
                    mask.get_or_insert_with(NullMask::default).set(n);
                    true
                }
                _ => false,
            },
        }
    }

    fn push(&mut self, v: &Value) {
        if !self.try_push(v) {
            self.demote();
            if let ColBuilder::Boxed(vals) = self {
                vals.push(v.clone());
            }
        }
    }

    fn push_owned(&mut self, v: Value) {
        if let ColBuilder::Boxed(vals) = self {
            vals.push(v);
            return;
        }
        if !self.try_push(&v) {
            self.demote();
            if let ColBuilder::Boxed(vals) = self {
                vals.push(v);
            }
        }
    }

    /// Fall back to boxed storage, reconstructing the values pushed so far
    /// position-for-position.
    fn demote(&mut self) {
        let data = std::mem::replace(self, ColBuilder::Boxed(Vec::new())).finish();
        *self = ColBuilder::Boxed(data.into_values());
    }

    fn finish(self) -> ColData {
        match self {
            ColBuilder::Boxed(v) => ColData::Boxed(v),
            ColBuilder::I64(v, m) => ColData::I64(v, m),
            ColBuilder::F64(v, m) => ColData::F64(v, m),
            ColBuilder::Str(v, m) => ColData::Str(v, m),
        }
    }
}

/// One column of a chunk (see the module docs for the representations).
enum Col {
    /// Owned storage, one entry per physical row.
    Dense(ColData),
    /// Storage shared with other chunks (pass-through / join source).
    Shared(Arc<ColData>),
    /// Lazily gathered: the value at row `i` is `src[idx[i]]`.
    Gather {
        src: Arc<ColData>,
        idx: Arc<Vec<u32>>,
    },
}

impl Col {
    /// Resolve physical row `i` to `(storage, storage row)`.
    fn at(&self, i: usize) -> Option<(&ColData, usize)> {
        match self {
            Col::Dense(d) => Some((d, i)),
            Col::Shared(d) => Some((d.as_ref(), i)),
            Col::Gather { src, idx } => idx.get(i).map(|&j| (src.as_ref(), j as usize)),
        }
    }

    /// The value at physical row `i`, if in range (owned — typed storage
    /// constructs it, boxed storage clones).
    fn value(&self, i: usize) -> Option<Value> {
        self.at(i).and_then(|(d, j)| d.value(j))
    }

    fn eq_value(&self, i: usize, v: &Value) -> bool {
        self.at(i).is_some_and(|(d, j)| d.eq_value(j, v))
    }

    fn hash_at(&self, i: usize) -> (u64, bool) {
        match self.at(i) {
            Some((d, j)) => d.hash_at(j),
            None => (NULL_HASH, true),
        }
    }

    /// Convert to a shareable source column, cloning no values, and
    /// return the backing storage (for `Gather` the *source* — callers
    /// pair it with the composed index).
    fn into_shared(self) -> SharedCol {
        match self {
            Col::Dense(d) => (Arc::new(d), None),
            Col::Shared(d) => (d, None),
            Col::Gather { src, idx } => (src, Some(idx)),
        }
    }
}

/// A column converted to shareable form by [`Col::into_shared`]: the
/// backing storage plus the gather index when the column was gathered.
type SharedCol = (Arc<ColData>, Option<Arc<Vec<u32>>>);

/// A batch of rows in columnar layout. `sel` — when present — lists the
/// surviving *physical* row indices in order; operators that drop rows
/// (filter, distinct, limit over shared columns) narrow it instead of
/// compacting the columns.
pub(crate) struct Chunk {
    cols: Vec<Col>,
    /// Physical row count (columns may be empty when the row type has no
    /// columns, so this is tracked explicitly).
    height: usize,
    /// Surviving row indices in ascending order; `None` = all rows live.
    sel: Option<Vec<u32>>,
}

impl Chunk {
    /// Number of selected (live) rows.
    fn live(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.height,
        }
    }

    /// Physical index of the `k`-th selected row (`k < self.live()`).
    fn idx(&self, k: usize) -> usize {
        match &self.sel {
            Some(s) => s.get(k).copied().unwrap_or_default() as usize,
            None => k,
        }
    }

    /// The value at (physical row `i`, column `c`), if both are in range.
    fn col_value(&self, c: usize, i: usize) -> Option<Value> {
        self.cols.get(c).and_then(|col| col.value(i))
    }

    /// Does the value at (physical row `i`, column `c`) equal `v`?
    fn eq_at(&self, c: usize, i: usize, v: &Value) -> bool {
        self.cols.get(c).is_some_and(|col| col.eq_value(i, v))
    }

    /// Gather physical row `i` into an owned row.
    fn row_at(&self, i: usize) -> Row {
        self.cols.iter().filter_map(|c| c.value(i)).collect()
    }

    /// Append every selected row, in order, onto `out` — the chunk is
    /// spent. Fully dense owned chunks transpose by moving the values;
    /// shared or gathered columns clone each value exactly once (the same
    /// copy a streaming sink pays when materializing a borrowed view).
    fn into_rows(mut self, out: &mut Vec<Row>) {
        out.reserve(self.live());
        let all_dense = self.cols.iter().all(|c| matches!(c, Col::Dense(_)));
        if all_dense && self.sel.is_none() {
            let mut its: Vec<std::vec::IntoIter<Value>> = self
                .cols
                .into_iter()
                .map(|c| match c {
                    Col::Dense(d) => d.into_values().into_iter(),
                    _ => Vec::new().into_iter(),
                })
                .collect();
            for _ in 0..self.height {
                let mut row = Vec::with_capacity(its.len());
                for it in &mut its {
                    if let Some(v) = it.next() {
                        row.push(v);
                    }
                }
                out.push(row);
            }
            return;
        }
        if all_dense {
            // selected rows are taken out of the owned columns in place
            // (the dropped remainder is never read again) — no re-clone
            if let Some(sel) = self.sel.take() {
                for i in sel {
                    let i = i as usize;
                    let mut row = Vec::with_capacity(self.cols.len());
                    for col in &mut self.cols {
                        if let Col::Dense(d) = col {
                            if let Some(v) = d.take(i) {
                                row.push(v);
                            }
                        }
                    }
                    out.push(row);
                }
            }
            return;
        }
        for k in 0..self.live() {
            out.push(self.row_at(self.idx(k)));
        }
    }

    /// Keep only the first `n` selected rows.
    fn truncate_live(&mut self, n: usize) {
        match &mut self.sel {
            Some(s) => s.truncate(n),
            None => {
                if n >= self.height {
                    return;
                }
                if self.cols.iter().all(|c| matches!(c, Col::Dense(_))) {
                    for col in &mut self.cols {
                        if let Col::Dense(d) = col {
                            d.truncate(n);
                        }
                    }
                    self.height = n;
                } else {
                    // shared storage cannot be truncated — select a prefix
                    self.sel = Some((0..n as u32).collect());
                }
            }
        }
    }

    /// Build a per-chunk view of the `needed` columns for the shared
    /// expression evaluator (whose `RowAccess` hands out `&Value`): boxed
    /// columns are borrowed in place (keeping their gather index), typed
    /// columns are materialized to `Value`s once, indexed by physical row.
    fn eval_view(&self, needed: &[usize]) -> EvalView<'_> {
        let mut cols: Vec<EvalCol<'_>> = (0..self.cols.len()).map(|_| EvalCol::Absent).collect();
        for &c in needed {
            let Some(col) = self.cols.get(c) else {
                continue;
            };
            let built = match col {
                Col::Dense(ColData::Boxed(v)) => EvalCol::Borrowed(v, None),
                Col::Dense(other) => EvalCol::Owned(
                    (0..self.height)
                        .map(|i| other.value(i).unwrap_or(Value::Null))
                        .collect(),
                ),
                Col::Shared(d) => match d.as_ref() {
                    ColData::Boxed(v) => EvalCol::Borrowed(v, None),
                    other => EvalCol::Owned(
                        (0..self.height)
                            .map(|i| other.value(i).unwrap_or(Value::Null))
                            .collect(),
                    ),
                },
                Col::Gather { src, idx } => match src.as_ref() {
                    ColData::Boxed(v) => EvalCol::Borrowed(v, Some(idx.as_slice())),
                    other => EvalCol::Owned(
                        idx.iter()
                            .map(|&j| other.value(j as usize).unwrap_or(Value::Null))
                            .collect(),
                    ),
                },
            };
            if let Some(slot) = cols.get_mut(c) {
                *slot = built;
            }
        }
        EvalView { cols }
    }
}

/// One column of an [`EvalView`] (see [`Chunk::eval_view`]).
enum EvalCol<'a> {
    /// Not referenced by the expressions this view serves.
    Absent,
    /// Borrowed boxed storage, with the gather index when indirected.
    Borrowed(&'a [Value], Option<&'a [u32]>),
    /// Typed storage materialized to values, indexed by physical row.
    Owned(Vec<Value>),
}

/// Borrow-friendly chunk view for expression evaluation.
struct EvalView<'a> {
    cols: Vec<EvalCol<'a>>,
}

/// One physical row of an [`EvalView`], readable through the shared
/// expression evaluator ([`Expr::eval_on`] / [`Expr::matches_on`]).
struct EvalRow<'a, 'b> {
    view: &'a EvalView<'b>,
    row: usize,
}

impl RowAccess for EvalRow<'_, '_> {
    fn value_at(&self, i: usize) -> Option<&Value> {
        match self.view.cols.get(i)? {
            EvalCol::Absent => None,
            EvalCol::Borrowed(vals, None) => vals.get(self.row),
            EvalCol::Borrowed(vals, Some(idx)) => {
                idx.get(self.row).and_then(|&j| vals.get(j as usize))
            }
            EvalCol::Owned(vals) => vals.get(self.row),
        }
    }
}

/// The consumer side of a chunked operator: return `false` to stop the
/// producer (early termination), `true` to keep receiving chunks.
type ChunkSink<'s> = dyn FnMut(Chunk) -> StoreResult<bool> + 's;

/// Accumulates emitted rows column-wise and flushes a dense chunk into the
/// downstream sink every [`CHUNK_ROWS`] rows (plus a final partial flush).
/// Scans and values build **typed** columns from the catalog schema;
/// aggregate/sort/top-k output stays boxed (mixed accumulator types).
struct Emitter<'a, 'b> {
    types: Vec<Option<SqlType>>,
    cols: Vec<ColBuilder>,
    height: usize,
    sink: &'a mut ChunkSink<'b>,
}

impl<'a, 'b> Emitter<'a, 'b> {
    /// An emitter with schema-typed column layouts (`None` = boxed).
    fn typed(types: Vec<Option<SqlType>>, sink: &'a mut ChunkSink<'b>) -> Emitter<'a, 'b> {
        // Columns start empty and grow geometrically: most queries the E1
        // processes issue emit a handful of rows, and pre-reserving
        // CHUNK_ROWS per column would make the allocation dominate them.
        // Once a full chunk has been flushed the stream is known to be
        // large and the replacement columns are pre-sized (see `flush`).
        Emitter {
            cols: types.iter().map(|&t| ColBuilder::for_type(t, 0)).collect(),
            types,
            height: 0,
            sink,
        }
    }

    /// An emitter producing boxed `Value` columns throughout.
    fn boxed(width: usize, sink: &'a mut ChunkSink<'b>) -> Emitter<'a, 'b> {
        Emitter::typed(vec![None; width], sink)
    }

    /// Push the concatenation of `parts` as one row.
    fn push_concat(&mut self, parts: &[&[Value]]) -> StoreResult<bool> {
        let mut cols = self.cols.iter_mut();
        for part in parts {
            for v in *part {
                if let Some(col) = cols.next() {
                    col.push(v);
                }
            }
        }
        self.bump()
    }

    /// Push `proj`-selected columns of `row` as one row.
    fn push_projected(&mut self, row: &[Value], proj: &[usize]) -> StoreResult<bool> {
        for (col, &src) in self.cols.iter_mut().zip(proj) {
            if let Some(v) = row.get(src) {
                col.push(v);
            }
        }
        self.bump()
    }

    /// Push an owned row (aggregate/sort/top-k output).
    fn push_owned(&mut self, row: Row) -> StoreResult<bool> {
        for (col, v) in self.cols.iter_mut().zip(row) {
            col.push_owned(v);
        }
        self.bump()
    }

    fn bump(&mut self) -> StoreResult<bool> {
        self.height += 1;
        if self.height >= CHUNK_ROWS {
            self.flush()
        } else {
            Ok(true)
        }
    }

    /// Send the buffered rows downstream (no-op when empty). Returns the
    /// sink's verdict: `Ok(false)` = stop producing.
    fn flush(&mut self) -> StoreResult<bool> {
        if self.height == 0 {
            return Ok(true);
        }
        // a full chunk means more is probably coming — pre-size the next one
        let cap = if self.height >= CHUNK_ROWS {
            CHUNK_ROWS
        } else {
            0
        };
        let builders = std::mem::replace(
            &mut self.cols,
            self.types
                .iter()
                .map(|&t| ColBuilder::for_type(t, cap))
                .collect(),
        );
        let chunk = Chunk {
            cols: builders
                .into_iter()
                .map(|b| Col::Dense(b.finish()))
                .collect(),
            height: self.height,
            sel: None,
        };
        self.height = 0;
        (self.sink)(chunk)
    }
}

/// Turn a spent probe chunk into gather columns over `probe_idx` (the
/// physical probe row index of each output row). Every `Dense`/`Shared`
/// probe column shares one index `Arc`; `Gather` probe columns compose
/// their existing index with it — u32 reads, no `Value` clones. The memo
/// reuses one composition per distinct source index vector (columns
/// emitted by the same upstream join all share one).
fn gather_probe_cols(probe: Chunk, probe_idx: &Arc<Vec<u32>>) -> Vec<Col> {
    let mut memo: Vec<(*const Vec<u32>, Arc<Vec<u32>>)> = Vec::new();
    probe
        .cols
        .into_iter()
        .map(|col| {
            let (src, old_idx) = col.into_shared();
            let idx = match old_idx {
                None => probe_idx.clone(),
                Some(old) => {
                    let key = Arc::as_ptr(&old);
                    match memo.iter().find(|(p, _)| *p == key) {
                        Some((_, composed)) => composed.clone(),
                        None => {
                            let composed: Arc<Vec<u32>> = Arc::new(
                                probe_idx
                                    .iter()
                                    .map(|&k| old.get(k as usize).copied().unwrap_or_default())
                                    .collect(),
                            );
                            memo.push((key, composed.clone()));
                            composed
                        }
                    }
                }
            };
            Col::Gather { src, idx }
        })
        .collect()
}

/// Assemble one join output chunk: gathered probe columns and the inner
/// half, probe half first iff `probe_first`.
fn join_chunk(probe: Chunk, probe_idx: Vec<u32>, inner: Vec<Col>, probe_first: bool) -> Chunk {
    let height = probe_idx.len();
    let probe_idx = Arc::new(probe_idx);
    let probe_cols = gather_probe_cols(probe, &probe_idx);
    let mut cols = Vec::with_capacity(probe_cols.len() + inner.len());
    if probe_first {
        cols.extend(probe_cols);
        cols.extend(inner);
    } else {
        cols.extend(inner);
        cols.extend(probe_cols);
    }
    Chunk {
        cols,
        height,
        sel: None,
    }
}

/// Run a plan through the chunked executor, collecting into a relation —
/// the [`ExecMode::Vectorized`] entry point.
pub(crate) fn materialize_chunked(plan: &Plan, db: &Database) -> StoreResult<Relation> {
    let schema = plan.schema(db)?;
    let _probe_scope = if boxed_probe_ablated() && prefers_boxed_probe(plan) {
        dip_trace::count("relstore.batch.boxed_probe", 1);
        Some(BoxedProbeScope::enter())
    } else {
        None
    };
    let mut rows: Vec<Row> = Vec::new();
    drive(plan, db, &mut |c: Chunk| {
        c.into_rows(&mut rows);
        Ok(true)
    })?;
    Ok(Relation::new(schema, rows))
}

/// `dip-trace` counter name for a node's emitted chunk count.
fn chunks_counter(plan: &Plan) -> &'static str {
    match plan {
        Plan::Scan { .. } => "relstore.batch.chunks.scan",
        Plan::Values(_) => "relstore.batch.chunks.values",
        Plan::Filter { .. } => "relstore.batch.chunks.filter",
        Plan::Project { .. } => "relstore.batch.chunks.project",
        Plan::HashJoin { .. } => "relstore.batch.chunks.hash_join",
        Plan::IndexJoin { .. } => "relstore.batch.chunks.index_join",
        Plan::UnionAll(_) => "relstore.batch.chunks.union_all",
        Plan::UnionDistinct { .. } => "relstore.batch.chunks.union_distinct",
        Plan::Aggregate { .. } => "relstore.batch.chunks.aggregate",
        Plan::Sort { .. } => "relstore.batch.chunks.sort",
        Plan::Limit { .. } => "relstore.batch.chunks.limit",
        Plan::TopK { .. } => "relstore.batch.chunks.top_k",
    }
}

/// `dip-trace` counter name for a node's emitted (selected) row count —
/// `batch.rows / (batch.chunks × 1024)` is the node's chunk fill rate.
fn batch_rows_counter(plan: &Plan) -> &'static str {
    match plan {
        Plan::Scan { .. } => "relstore.batch.rows.scan",
        Plan::Values(_) => "relstore.batch.rows.values",
        Plan::Filter { .. } => "relstore.batch.rows.filter",
        Plan::Project { .. } => "relstore.batch.rows.project",
        Plan::HashJoin { .. } => "relstore.batch.rows.hash_join",
        Plan::IndexJoin { .. } => "relstore.batch.rows.index_join",
        Plan::UnionAll(_) => "relstore.batch.rows.union_all",
        Plan::UnionDistinct { .. } => "relstore.batch.rows.union_distinct",
        Plan::Aggregate { .. } => "relstore.batch.rows.aggregate",
        Plan::Sort { .. } => "relstore.batch.rows.sort",
        Plan::Limit { .. } => "relstore.batch.rows.limit",
        Plan::TopK { .. } => "relstore.batch.rows.top_k",
    }
}

/// Drive a node's chunk output into `sink`, publishing the per-node span
/// and counters. Returns `Ok(false)` iff `sink` requested termination.
fn drive(plan: &Plan, db: &Database, sink: &mut ChunkSink) -> StoreResult<bool> {
    let _span = dip_trace::span_cat(
        dip_trace::Layer::Relstore,
        plan_op(plan),
        dip_trace::Category::Processing,
    );
    let mut chunks: u64 = 0;
    let mut rows: u64 = 0;
    let result = exec_chunks(plan, db, &mut |c| {
        chunks += 1;
        rows += c.live() as u64;
        sink(c)
    });
    // rows_out stays populated in vectorized mode so records are
    // comparable across exec modes; chunks/rows add the batching view
    // (skipped for empty streams so tiny point queries stay cheap).
    dip_trace::count(rows_counter(plan), rows);
    if chunks > 0 {
        dip_trace::count(chunks_counter(plan), chunks);
        dip_trace::count(batch_rows_counter(plan), rows);
    }
    result
}

/// Extract the join/group key columns of one selected chunk row into `buf`.
fn gather_key(chunk: &Chunk, row: usize, cols: &[usize], buf: &mut Vec<Value>) -> StoreResult<()> {
    buf.clear();
    for &c in cols {
        match chunk.col_value(c, row) {
            Some(v) => buf.push(v),
            None => return Err(oob(c)),
        }
    }
    Ok(())
}

/// Compute the combined key hash of every *selected* row of `c`, one pass
/// per key column — the vectorized replacement for materializing and
/// hashing a `Vec<Value>` key per row. On return `hashes[k]` is the key
/// hash of the `k`-th selected row; when `nulls` is given, `nulls[k]` is
/// set iff any key column is NULL there (joins skip those rows). With the
/// row-keys ablation on, keys are materialized per row instead — same
/// hashes, bench-only.
fn chunk_key_hashes(
    c: &Chunk,
    cols: &[usize],
    hashes: &mut Vec<u64>,
    mut nulls: Option<&mut Vec<bool>>,
) -> StoreResult<()> {
    let live = c.live();
    hashes.clear();
    hashes.resize(live, KEY_SEED);
    if let Some(n) = nulls.as_deref_mut() {
        n.clear();
        n.resize(live, false);
    }
    if row_keys_ablated() {
        for k in 0..live {
            let i = c.idx(k);
            let mut key: Vec<Value> = Vec::with_capacity(cols.len());
            for &cx in cols {
                key.push(c.col_value(cx, i).ok_or_else(|| oob(cx))?);
            }
            if let Some(slot) = hashes.get_mut(k) {
                *slot = hash_values(&key);
            }
            if let Some(n) = nulls.as_deref_mut() {
                if let Some(flag) = n.get_mut(k) {
                    *flag = key.iter().any(|v| v.is_null());
                }
            }
        }
        return Ok(());
    }
    for &cx in cols {
        let col = c.cols.get(cx).ok_or_else(|| oob(cx))?;
        match (&c.sel, col) {
            (None, Col::Dense(d)) => d.hash_into(hashes, nulls.as_mut().map(|v| v.as_mut_slice())),
            (None, Col::Shared(d)) => d.hash_into(hashes, nulls.as_mut().map(|v| v.as_mut_slice())),
            _ => {
                for k in 0..live {
                    let (h, isnull) = col.hash_at(c.idx(k));
                    if let Some(slot) = hashes.get_mut(k) {
                        *slot = combine(*slot, h);
                    }
                    if isnull {
                        if let Some(n) = nulls.as_deref_mut() {
                            if let Some(flag) = n.get_mut(k) {
                                *flag = true;
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Per-chunk source of one aggregate's input values: a borrowed chunk
/// column (bare `Expr::Col` inputs — no expression dispatch per row), a
/// dense pre-evaluated vector in selection order, or nothing (`COUNT(*)`).
enum AggSrc<'a> {
    Col(&'a Col),
    Computed(Vec<Value>),
    Star,
}

/// Apply one input value to an aggregate state — the by-reference mirror of
/// [`AggState::update`]'s `Some(v)` path.
fn apply_agg(st: &mut AggState, v: &Value) {
    match st.func() {
        AggFunc::Count => st.count_value(v),
        AggFunc::Sum | AggFunc::Avg => st.add_value(v),
        AggFunc::Min => st.min_value(v),
        AggFunc::Max => st.max_value(v),
    }
}

/// The dense storage behind a column, when it has one (gathers fall back
/// to per-row access).
fn dense_data(col: &Col) -> Option<&ColData> {
    match col {
        Col::Dense(d) => Some(d),
        Col::Shared(d) => Some(d.as_ref()),
        Col::Gather { .. } => None,
    }
}

/// Fold all `n` rows of a dense unselected column into one aggregate
/// state — the type-specialized global-aggregate fast path. Typed columns
/// run over primitive slices (COUNT is a bitmap popcount); float MIN/MAX
/// stay per-element because NaN makes chunk-local reduction unsound.
fn agg_dense(st: &mut AggState, d: &ColData, n: usize) {
    match st.func() {
        AggFunc::Count => match d {
            ColData::Boxed(vals) => {
                for v in vals.iter().take(n) {
                    st.count_value(v);
                }
            }
            ColData::I64(_, m) | ColData::F64(_, m) | ColData::Str(_, m) => {
                let nulls = m.as_ref().map_or(0, |m| m.count_nulls(n));
                st.count_n((n - nulls) as u64);
            }
        },
        AggFunc::Sum | AggFunc::Avg => match d {
            ColData::Boxed(vals) => {
                for v in vals.iter().take(n) {
                    st.add_value(v);
                }
            }
            ColData::I64(vals, None) => {
                for &x in vals.iter().take(n) {
                    st.add_int(x);
                }
            }
            ColData::I64(vals, Some(m)) => {
                for (i, &x) in vals.iter().take(n).enumerate() {
                    if !m.is_null(i) {
                        st.add_int(x);
                    }
                }
            }
            ColData::F64(vals, None) => {
                for &x in vals.iter().take(n) {
                    st.add_float(x);
                }
            }
            ColData::F64(vals, Some(m)) => {
                for (i, &x) in vals.iter().take(n).enumerate() {
                    if !m.is_null(i) {
                        st.add_float(x);
                    }
                }
            }
            ColData::Str(vals, m) => {
                // SUM over strings parses each value (oracle semantics)
                for (i, s) in vals.iter().take(n).enumerate() {
                    if !masked(m, i) {
                        st.add_value(&Value::Str(s.clone()));
                    }
                }
            }
        },
        AggFunc::Min => match d {
            ColData::Boxed(vals) => {
                for v in vals.iter().take(n) {
                    st.min_value(v);
                }
            }
            ColData::I64(vals, m) => {
                for (i, &x) in vals.iter().take(n).enumerate() {
                    if !masked(m, i) {
                        st.min_value(&Value::Int(x));
                    }
                }
            }
            ColData::F64(vals, m) => {
                for (i, &x) in vals.iter().take(n).enumerate() {
                    if !masked(m, i) {
                        st.min_value(&Value::Float(x));
                    }
                }
            }
            ColData::Str(vals, m) => {
                for (i, s) in vals.iter().take(n).enumerate() {
                    if !masked(m, i) {
                        st.min_value(&Value::Str(s.clone()));
                    }
                }
            }
        },
        AggFunc::Max => match d {
            ColData::Boxed(vals) => {
                for v in vals.iter().take(n) {
                    st.max_value(v);
                }
            }
            ColData::I64(vals, m) => {
                for (i, &x) in vals.iter().take(n).enumerate() {
                    if !masked(m, i) {
                        st.max_value(&Value::Int(x));
                    }
                }
            }
            ColData::F64(vals, m) => {
                for (i, &x) in vals.iter().take(n).enumerate() {
                    if !masked(m, i) {
                        st.max_value(&Value::Float(x));
                    }
                }
            }
            ColData::Str(vals, m) => {
                for (i, s) in vals.iter().take(n).enumerate() {
                    if !masked(m, i) {
                        st.max_value(&Value::Str(s.clone()));
                    }
                }
            }
        },
    }
}

fn masked(m: &Option<NullMask>, i: usize) -> bool {
    m.as_ref().is_some_and(|m| m.is_null(i))
}

fn exec_chunks(plan: &Plan, db: &Database, sink: &mut ChunkSink) -> StoreResult<bool> {
    match plan {
        Plan::Scan {
            table,
            predicate,
            projection,
        } => {
            let t = db.table(table)?;
            // typed column layouts come straight from the catalog schema
            let types: Vec<Option<SqlType>> = match projection {
                Some(p) => p
                    .iter()
                    .map(|&i| t.schema.columns().get(i).map(|c| c.ty))
                    .collect(),
                None => t.schema.columns().iter().map(|c| Some(c.ty)).collect(),
            };
            let mut em = Emitter::typed(types, sink);
            let keep_going = match projection {
                None => t.stream_rows(predicate.as_ref(), &mut |row| em.push_concat(&[row]))?,
                Some(p) => {
                    t.stream_rows(predicate.as_ref(), &mut |row| em.push_projected(row, p))?
                }
            };
            if !keep_going {
                return Ok(false);
            }
            em.flush()
        }
        Plan::Values(rel) => {
            let types: Vec<Option<SqlType>> =
                rel.schema.columns().iter().map(|c| Some(c.ty)).collect();
            let mut em = Emitter::typed(types, sink);
            for r in &rel.rows {
                if !em.push_concat(&[r.as_slice()])? {
                    return Ok(false);
                }
            }
            em.flush()
        }
        Plan::Filter { input, predicate } => {
            let mut needed: Vec<usize> = Vec::new();
            predicate.referenced_columns(&mut needed);
            needed.sort_unstable();
            needed.dedup();
            drive(input, db, &mut |c: Chunk| {
                let mut sel: Vec<u32> = Vec::with_capacity(c.live());
                {
                    let view = c.eval_view(&needed);
                    for k in 0..c.live() {
                        let i = c.idx(k);
                        if predicate.matches_on(&EvalRow {
                            view: &view,
                            row: i,
                        })? {
                            sel.push(i as u32);
                        }
                    }
                }
                if sel.is_empty() {
                    return Ok(true);
                }
                let Chunk { cols, height, .. } = c;
                sink(Chunk {
                    cols,
                    height,
                    sel: Some(sel),
                })
            })
        }
        Plan::Project { input, exprs } => {
            let mut needed: Vec<usize> = Vec::new();
            let mut has_computed = false;
            for p in exprs {
                if !matches!(p.expr, Expr::Col(_)) {
                    has_computed = true;
                    p.expr.referenced_columns(&mut needed);
                }
            }
            needed.sort_unstable();
            needed.dedup();
            drive(input, db, &mut |c: Chunk| {
                let live = c.live();
                if live == 0 {
                    return Ok(true);
                }
                // Computed expressions evaluate column-at-a-time first,
                // through an eval view over the original chunk (typed
                // columns materialize once). Bare-column projections then
                // forward the input storage: without a selection it is
                // shared as-is, with one it becomes a gather over the
                // selection — no values move either way.
                let mut computed: Vec<Option<Vec<Value>>> = Vec::with_capacity(exprs.len());
                {
                    let view = if has_computed {
                        Some(c.eval_view(&needed))
                    } else {
                        None
                    };
                    for p in exprs {
                        match (&p.expr, &view) {
                            (Expr::Col(_), _) | (_, None) => computed.push(None),
                            (e, Some(view)) => {
                                let mut vals = Vec::with_capacity(live);
                                for k in 0..live {
                                    vals.push(e.eval_on(&EvalRow {
                                        view,
                                        row: c.idx(k),
                                    })?);
                                }
                                computed.push(Some(vals));
                            }
                        }
                    }
                }
                let sel_idx: Option<Arc<Vec<u32>>> = c.sel.clone().map(Arc::new);
                let mut shared: Vec<SharedCol> = Vec::with_capacity(c.cols.len());
                for col in c.cols {
                    shared.push(col.into_shared());
                }
                let mut memo: Vec<(*const Vec<u32>, Arc<Vec<u32>>)> = Vec::new();
                let mut out_cols: Vec<Col> = Vec::with_capacity(exprs.len());
                for (p, pre) in exprs.iter().zip(computed) {
                    if let Some(vals) = pre {
                        out_cols.push(Col::Dense(ColData::Boxed(vals)));
                        continue;
                    }
                    let Expr::Col(j) = &p.expr else {
                        return Err(StoreError::Eval(
                            "projection expression was not evaluated".into(),
                        ));
                    };
                    let (src, old_idx) = shared.get(*j).cloned().ok_or_else(|| oob(*j))?;
                    let idx = match (&sel_idx, old_idx) {
                        (None, None) => None,
                        (None, Some(old)) => Some(old),
                        (Some(sel), None) => Some(sel.clone()),
                        (Some(sel), Some(old)) => {
                            let key = Arc::as_ptr(&old);
                            Some(match memo.iter().find(|(k, _)| *k == key) {
                                Some((_, composed)) => composed.clone(),
                                None => {
                                    let composed: Arc<Vec<u32>> = Arc::new(
                                        sel.iter()
                                            .map(|&k| {
                                                old.get(k as usize).copied().unwrap_or_default()
                                            })
                                            .collect(),
                                    );
                                    memo.push((key, composed.clone()));
                                    composed
                                }
                            })
                        }
                    };
                    out_cols.push(match idx {
                        None => Col::Shared(src),
                        Some(idx) => Col::Gather { src, idx },
                    });
                }
                // Every output column now addresses 0..live in selection
                // order: with a selection present, bare columns composed it
                // into their gather index and computed columns evaluated the
                // selected rows; without one, live == physical height.
                sink(Chunk {
                    cols: out_cols,
                    height: live,
                    sel: None,
                })
            })
        }
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            kind,
        } => {
            if left_keys.len() != right_keys.len() {
                return Err(StoreError::Invalid("join key arity mismatch".into()));
            }
            // Same build-side choice as the streaming executor: build on the
            // estimated-smaller side; LEFT joins build on the right.
            let build_right =
                *kind == JoinKind::Left || right.estimate_rows(db) <= left.estimate_rows(db);
            let (build_plan, probe_plan, build_keys, probe_keys, probe_is_left) = if build_right {
                (&**right, &**left, right_keys, left_keys, true)
            } else {
                (&**left, &**right, left_keys, right_keys, false)
            };
            // Pre-size from the planner's cardinality estimate (table live
            // counts at the leaves), then exactly once the build is in hand.
            let mut build_rows: Vec<Row> = Vec::with_capacity(build_plan.estimate_rows(db));
            drive(build_plan, db, &mut |c: Chunk| {
                c.into_rows(&mut build_rows);
                Ok(true)
            })?;
            let build_len = build_rows.len();
            // Hash every build key once, then fill the hash-first index in
            // *descending* id order: chains walk ascending, reproducing the
            // streaming executor's probe × insertion-order output. NULL
            // keys never join, so they are never inserted.
            let mut bh: Vec<u64> = Vec::with_capacity(build_len);
            let mut bnull: Vec<bool> = Vec::with_capacity(build_len);
            for r in &build_rows {
                let mut h = KEY_SEED;
                let mut isnull = false;
                for &k in build_keys {
                    match r.get(k) {
                        Some(v) => {
                            h = combine(h, hash_value(v));
                            isnull |= v.is_null();
                        }
                        None => isnull = true,
                    }
                }
                bh.push(h);
                bnull.push(isnull);
            }
            let mut table = KeyIndex::with_capacity(build_len);
            for i in (0..build_len).rev() {
                if !bnull.get(i).copied().unwrap_or(true) {
                    if let Some(&h) = bh.get(i) {
                        table.insert_at(h, i as u32);
                    }
                }
            }
            drop(bh);
            drop(bnull);
            let left_pad = *kind == JoinKind::Left && probe_is_left;
            // Columnarize the build side once into schema-typed storage
            // (values move, not clone) and append one all-NULL row at index
            // `build_len`: LEFT-join pad emissions gather it like any real
            // match.
            let build_schema = build_plan.schema(db)?;
            let btypes: Vec<Option<SqlType>> =
                build_schema.columns().iter().map(|c| Some(c.ty)).collect();
            let mut builders: Vec<ColBuilder> = btypes
                .iter()
                .map(|&t| ColBuilder::for_type(t, build_len + 1))
                .collect();
            for row in build_rows.drain(..) {
                for (b, v) in builders.iter_mut().zip(row) {
                    b.push_owned(v);
                }
            }
            let bcols: Vec<Arc<ColData>> = builders
                .into_iter()
                .map(|mut b| {
                    b.push(&Value::Null);
                    Arc::new(b.finish())
                })
                .collect();
            let mut ph: Vec<u64> = Vec::new();
            let mut pnull: Vec<bool> = Vec::new();
            drive(probe_plan, db, &mut |c: Chunk| {
                // probe keys are hashed per chunk, one pass per key column;
                // candidates are compared hash-first against the stored
                // build columns — no per-row key materialization
                chunk_key_hashes(&c, probe_keys, &mut ph, Some(&mut pnull))?;
                let mut probe_idx: Vec<u32> = Vec::new();
                let mut build_idx: Vec<u32> = Vec::new();
                for k in 0..c.live() {
                    let i = c.idx(k);
                    if pnull.get(k).copied().unwrap_or(true) {
                        if left_pad {
                            probe_idx.push(i as u32);
                            build_idx.push(build_len as u32);
                        }
                        continue;
                    }
                    let h = ph.get(k).copied().unwrap_or(KEY_SEED);
                    let before = probe_idx.len();
                    for cand in table.candidates(h) {
                        let b = cand as usize;
                        let eq = probe_keys.iter().zip(build_keys).all(|(&pk, &bk)| {
                            match c.col_value(pk, i) {
                                Some(v) => bcols.get(bk).is_some_and(|bc| bc.eq_value(b, &v)),
                                None => false,
                            }
                        });
                        if eq {
                            probe_idx.push(i as u32);
                            build_idx.push(cand);
                        }
                    }
                    if probe_idx.len() == before && left_pad {
                        probe_idx.push(i as u32);
                        build_idx.push(build_len as u32);
                    }
                }
                if probe_idx.is_empty() {
                    return Ok(true);
                }
                let build_idx = Arc::new(build_idx);
                let inner: Vec<Col> = bcols
                    .iter()
                    .map(|src| Col::Gather {
                        src: src.clone(),
                        idx: build_idx.clone(),
                    })
                    .collect();
                sink(join_chunk(c, probe_idx, inner, probe_is_left))
            })
        }
        Plan::IndexJoin {
            probe,
            table,
            probe_keys,
            inner_keys,
            predicate,
            projection,
            kind,
            probe_is_left,
        } => {
            let t = db.table(table)?;
            let Some(session) = t.probe_on(inner_keys) else {
                // index dropped since planning: degrade to the equivalent
                // hash join rather than failing the query
                return exec_chunks(&index_join_equivalent(plan), db, sink);
            };
            let inner_width = match projection {
                Some(p) => p.len(),
                None => t.schema.len(),
            };
            // the planner only selects LEFT index joins with probe = left
            let left_pad = *kind == JoinKind::Left && *probe_is_left;
            let probe_first = *probe_is_left;
            let mut key: Vec<Value> = Vec::with_capacity(probe_keys.len());
            drive(probe, db, &mut |c: Chunk| {
                // probe columns are gathered (no clones); matched inner
                // rows are cloned once into dense output columns
                let mut probe_idx: Vec<u32> = Vec::new();
                let mut icols: Vec<Vec<Value>> = (0..inner_width).map(|_| Vec::new()).collect();
                for k in 0..c.live() {
                    let i = c.idx(k);
                    gather_key(&c, i, probe_keys, &mut key)?;
                    if key.iter().any(|v| v.is_null()) {
                        // NULL keys never join; LEFT probes still emit padded
                        if left_pad {
                            probe_idx.push(i as u32);
                            for col in &mut icols {
                                col.push(Value::Null);
                            }
                        }
                        continue;
                    }
                    let mut matched = false;
                    session.lookup_each(&key, &mut |ir| {
                        let keep = match predicate {
                            Some(p) => p.matches_on(ir)?,
                            None => true,
                        };
                        if !keep {
                            return Ok(true);
                        }
                        matched = true;
                        probe_idx.push(i as u32);
                        match projection {
                            Some(p) => {
                                for (col, &x) in icols.iter_mut().zip(p) {
                                    col.push(ir.get(x).cloned().unwrap_or(Value::Null));
                                }
                            }
                            None => {
                                for (col, v) in icols.iter_mut().zip(ir) {
                                    col.push(v.clone());
                                }
                            }
                        }
                        Ok(true)
                    })?;
                    if !matched && left_pad {
                        probe_idx.push(i as u32);
                        for col in &mut icols {
                            col.push(Value::Null);
                        }
                    }
                }
                if probe_idx.is_empty() {
                    return Ok(true);
                }
                let inner: Vec<Col> = icols
                    .into_iter()
                    .map(|v| Col::Dense(ColData::Boxed(v)))
                    .collect();
                sink(join_chunk(c, probe_idx, inner, probe_first))
            })
        }
        Plan::UnionAll(inputs) => {
            let width = plan.schema(db)?.len();
            for i in inputs {
                let w = i.schema(db)?.len();
                if w != width {
                    return Err(StoreError::Invalid(format!(
                        "union arity mismatch: {w} vs {width}"
                    )));
                }
            }
            for i in inputs {
                if !drive(i, db, sink)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Plan::UnionDistinct { inputs, key } => {
            let width = plan.schema(db)?.len();
            for i in inputs {
                if i.schema(db)?.len() != width {
                    return Err(StoreError::Invalid("union arity mismatch".into()));
                }
            }
            // First-seen dedup through the hash-first index: chunk key
            // hashes are computed per column, candidates compare against
            // the *stored* first occurrence, and a key tuple (or whole
            // row) is only materialized when it is new.
            let all_cols: Vec<usize>;
            let kcols: &[usize] = match key {
                Some(cols) => cols,
                None => {
                    all_cols = (0..width).collect();
                    &all_cols
                }
            };
            let mut ix = KeyIndex::with_capacity(plan.estimate_rows(db));
            let mut seen: Vec<Row> = Vec::new();
            let mut hashes: Vec<u64> = Vec::new();
            for inp in inputs {
                let keep_going = drive(inp, db, &mut |c: Chunk| {
                    chunk_key_hashes(&c, kcols, &mut hashes, None)?;
                    let mut sel: Vec<u32> = Vec::with_capacity(c.live());
                    for k in 0..c.live() {
                        let i = c.idx(k);
                        let h = hashes.get(k).copied().unwrap_or(KEY_SEED);
                        let mut dup = false;
                        for cand in ix.candidates(h) {
                            if let Some(stored) = seen.get(cand as usize) {
                                if kcols.iter().zip(stored).all(|(&cx, v)| c.eq_at(cx, i, v)) {
                                    dup = true;
                                    break;
                                }
                            }
                        }
                        if !dup {
                            let mut kv = Vec::with_capacity(kcols.len());
                            for &cx in kcols {
                                kv.push(c.col_value(cx, i).ok_or_else(|| oob(cx))?);
                            }
                            ix.push(h);
                            seen.push(kv);
                            sel.push(i as u32);
                        }
                    }
                    if sel.is_empty() {
                        return Ok(true);
                    }
                    let Chunk { cols, height, .. } = c;
                    sink(Chunk {
                        cols,
                        height,
                        sel: Some(sel),
                    })
                })?;
                if !keep_going {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            // Group keys live in first-seen order in `order` (emission
            // order), with states parallel to it; the hash-first index
            // maps key hashes to group ids, so existing groups (the common
            // case) never materialize a key.
            let est = plan.estimate_rows(db).max(1);
            let mut ix = KeyIndex::with_capacity(est);
            let mut order: Vec<Row> = Vec::new();
            let mut states: Vec<Vec<AggState>> = Vec::new();
            let mut ghash: Vec<u64> = Vec::new();
            drive(input, db, &mut |c: Chunk| {
                let live = c.live();
                // Resolve each aggregate's input source once per chunk:
                // bare columns are read in place, computed expressions are
                // evaluated column-at-a-time into a dense vector.
                let mut eval_cols: Vec<usize> = Vec::new();
                let mut any_computed = false;
                for a in aggs {
                    if let Some(e) = &a.input {
                        if !matches!(e, Expr::Col(_)) {
                            any_computed = true;
                            e.referenced_columns(&mut eval_cols);
                        }
                    }
                }
                let view = if any_computed {
                    eval_cols.sort_unstable();
                    eval_cols.dedup();
                    Some(c.eval_view(&eval_cols))
                } else {
                    None
                };
                let mut srcs: Vec<AggSrc> = Vec::with_capacity(aggs.len());
                for a in aggs {
                    let src = match &a.input {
                        None => AggSrc::Star,
                        Some(Expr::Col(j)) => AggSrc::Col(c.cols.get(*j).ok_or_else(|| oob(*j))?),
                        Some(e) => {
                            let Some(view) = &view else {
                                return Err(StoreError::Eval(
                                    "aggregate input was not evaluated".into(),
                                ));
                            };
                            let mut vals = Vec::with_capacity(live);
                            for k in 0..live {
                                vals.push(e.eval_on(&EvalRow {
                                    view,
                                    row: c.idx(k),
                                })?);
                            }
                            AggSrc::Computed(vals)
                        }
                    };
                    srcs.push(src);
                }
                if group_by.is_empty() {
                    // Global aggregate: one state vector, tight per-column
                    // loops over typed storage — the specialized fast path.
                    if states.is_empty() {
                        order.push(Vec::new());
                        states.push(aggs.iter().map(|a| AggState::new(a.func)).collect());
                    }
                    let Some(sts) = states.first_mut() else {
                        return Ok(true);
                    };
                    for (st, src) in sts.iter_mut().zip(&srcs) {
                        match src {
                            AggSrc::Star => {
                                // mirrors `update(None)`: only COUNT reacts
                                if st.func() == AggFunc::Count {
                                    st.count_n(live as u64);
                                }
                            }
                            AggSrc::Col(col) => {
                                let dense = if c.sel.is_none() {
                                    dense_data(col)
                                } else {
                                    None
                                };
                                match dense {
                                    Some(d) => agg_dense(st, d, c.height),
                                    None => {
                                        for k in 0..live {
                                            if let Some(v) = col.value(c.idx(k)) {
                                                apply_agg(st, &v);
                                            }
                                        }
                                    }
                                }
                            }
                            AggSrc::Computed(vals) => {
                                for v in vals {
                                    apply_agg(st, v);
                                }
                            }
                        }
                    }
                } else {
                    chunk_key_hashes(&c, group_by, &mut ghash, None)?;
                    for k in 0..live {
                        let i = c.idx(k);
                        let h = ghash.get(k).copied().unwrap_or(KEY_SEED);
                        let mut gid: Option<usize> = None;
                        for cand in ix.candidates(h) {
                            let g = cand as usize;
                            if order.get(g).is_some_and(|stored| {
                                group_by
                                    .iter()
                                    .zip(stored)
                                    .all(|(&cx, v)| c.eq_at(cx, i, v))
                            }) {
                                gid = Some(g);
                                break;
                            }
                        }
                        let g = match gid {
                            Some(g) => g,
                            None => {
                                let mut kv = Vec::with_capacity(group_by.len());
                                for &cx in group_by {
                                    kv.push(c.col_value(cx, i).ok_or_else(|| oob(cx))?);
                                }
                                let g = ix.push(h) as usize;
                                order.push(kv);
                                states.push(aggs.iter().map(|a| AggState::new(a.func)).collect());
                                g
                            }
                        };
                        let Some(sts) = states.get_mut(g) else {
                            continue;
                        };
                        for (st, src) in sts.iter_mut().zip(&srcs) {
                            match src {
                                AggSrc::Star => {
                                    if st.func() == AggFunc::Count {
                                        st.count_row();
                                    }
                                }
                                AggSrc::Col(col) => {
                                    if let Some(v) = col.value(i) {
                                        apply_agg(st, &v);
                                    }
                                }
                                AggSrc::Computed(vals) => {
                                    if let Some(v) = vals.get(k) {
                                        apply_agg(st, v);
                                    }
                                }
                            }
                        }
                    }
                }
                Ok(true)
            })?;
            // Global aggregate over zero rows still yields one row.
            if states.is_empty() && group_by.is_empty() {
                order.push(vec![]);
                states.push(aggs.iter().map(|a| AggState::new(a.func)).collect());
            }
            let mut em = Emitter::boxed(group_by.len() + aggs.len(), sink);
            for (key, sts) in order.into_iter().zip(states) {
                let mut row = key;
                for st in sts {
                    row.push(st.finish());
                }
                if !em.push_owned(row)? {
                    return Ok(false);
                }
            }
            em.flush()
        }
        Plan::Sort { input, keys } => {
            let mut rows: Vec<Row> = Vec::new();
            drive(input, db, &mut |c: Chunk| {
                c.into_rows(&mut rows);
                Ok(true)
            })?;
            sort_rows_by_columns(&mut rows, keys);
            let width = plan.schema(db)?.len();
            let mut em = Emitter::boxed(width, sink);
            for row in rows {
                if !em.push_owned(row)? {
                    return Ok(false);
                }
            }
            em.flush()
        }
        Plan::Limit { input, n } => {
            let mut remaining = *n;
            if remaining == 0 {
                return Ok(true);
            }
            let mut downstream_stop = false;
            drive(input, db, &mut |mut c: Chunk| {
                if c.live() > remaining {
                    c.truncate_live(remaining);
                }
                remaining -= c.live();
                if !sink(c)? {
                    downstream_stop = true;
                    return Ok(false);
                }
                Ok(remaining > 0)
            })?;
            Ok(!downstream_stop)
        }
        Plan::TopK { input, keys, n } => {
            let n = *n;
            if n == 0 {
                return Ok(true);
            }
            // Same bounded heap as the streaming path: ordered by (sort
            // key, input sequence) so ties reproduce the stable sort.
            let mut heap: BinaryHeap<TopKEntry> = BinaryHeap::with_capacity(n + 1);
            let mut seq = 0usize;
            let mut kbuf: Vec<Value> = Vec::with_capacity(keys.len());
            drive(input, db, &mut |c: Chunk| {
                for k in 0..c.live() {
                    let i = c.idx(k);
                    gather_key(&c, i, keys, &mut kbuf)?;
                    if heap.len() >= n {
                        // a row entering now carries the largest seq, so on
                        // a key tie it sorts after the current worst and
                        // cannot displace it — only a strictly smaller key
                        // wins, and everything else skips materialization
                        let displaces = heap
                            .peek()
                            .is_some_and(|worst| kbuf.as_slice() < worst.key.as_slice());
                        seq += 1;
                        if !displaces {
                            continue;
                        }
                        heap.pop();
                        heap.push(TopKEntry {
                            key: std::mem::take(&mut kbuf),
                            seq: seq - 1,
                            row: c.row_at(i),
                        });
                    } else {
                        heap.push(TopKEntry {
                            key: std::mem::take(&mut kbuf),
                            seq,
                            row: c.row_at(i),
                        });
                        seq += 1;
                    }
                }
                Ok(true)
            })?;
            let width = plan.schema(db)?.len();
            let mut em = Emitter::boxed(width, sink);
            for e in heap.into_sorted_vec() {
                if !em.push_owned(e.row)? {
                    return Ok(false);
                }
            }
            em.flush()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_mask_set_count_truncate() {
        let mut m = NullMask::default();
        m.set(0);
        m.set(63);
        m.set(64);
        m.set(130);
        assert!(m.is_null(0) && m.is_null(63) && m.is_null(64) && m.is_null(130));
        assert!(!m.is_null(1) && !m.is_null(129) && !m.is_null(4096));
        assert_eq!(m.count_nulls(131), 4);
        assert_eq!(m.count_nulls(130), 3); // bit 130 past the logical end
        assert_eq!(m.count_nulls(64), 2);
        m.truncate(64);
        assert!(!m.is_null(64) && !m.is_null(130));
        assert_eq!(m.count_nulls(131), 2);
    }

    #[test]
    fn builder_keeps_typed_values_and_masks_nulls() {
        let mut b = ColBuilder::for_type(Some(SqlType::Int), 0);
        for v in [Value::Int(5), Value::Null, Value::Int(-9)] {
            b.push(&v);
        }
        let d = b.finish();
        assert!(matches!(d, ColData::I64(..)));
        assert_eq!(d.value(0), Some(Value::Int(5)));
        assert_eq!(d.value(1), Some(Value::Null));
        assert_eq!(d.value(2), Some(Value::Int(-9)));
        assert_eq!(d.value(3), None);
    }

    #[test]
    fn builder_demotes_on_widened_variants() {
        // Int is legal in a Float column (check_row widening) and must
        // come back out as Int, not Float — the builder demotes to Boxed.
        let seq = [
            Value::Float(1.5),
            Value::Null,
            Value::Int(2),
            Value::Float(3.0),
        ];
        let mut b = ColBuilder::for_type(Some(SqlType::Float), 0);
        for v in &seq {
            b.push(v);
        }
        let d = b.finish();
        assert!(matches!(d, ColData::Boxed(_)));
        for (i, v) in seq.iter().enumerate() {
            assert_eq!(d.value(i).as_ref(), Some(v));
        }
        // Bool in an Int column likewise
        let mut b = ColBuilder::for_type(Some(SqlType::Int), 0);
        b.push(&Value::Int(1));
        b.push(&Value::Bool(true));
        let d = b.finish();
        assert_eq!(d.value(0), Some(Value::Int(1)));
        assert_eq!(d.value(1), Some(Value::Bool(true)));
    }

    #[test]
    fn eq_value_and_hash_agree_across_numeric_types() {
        let mut b = ColBuilder::for_type(Some(SqlType::Int), 0);
        b.push(&Value::Int(3));
        let d = b.finish();
        // Int(3) ≡ Float(3.0) under total_cmp: typed storage must agree
        assert!(d.eq_value(0, &Value::Float(3.0)));
        assert!(d.eq_value(0, &Value::Int(3)));
        assert!(!d.eq_value(0, &Value::Int(4)));
        let (h, isnull) = d.hash_at(0);
        assert!(!isnull);
        assert_eq!(h, hash_value(&Value::Float(3.0)));
        assert_eq!(h, hash_value(&Value::Int(3)));
    }

    #[test]
    fn boxed_probe_scope_gates_builder_layout_and_restores() {
        assert!(!boxed_probe_scope());
        {
            let _guard = BoxedProbeScope::enter();
            assert!(boxed_probe_scope());
            let b = ColBuilder::for_type(Some(SqlType::Int), 0);
            assert!(matches!(b, ColBuilder::Boxed(_)));
            // nested entry restores to the *outer* scope, not to "off"
            {
                let _inner = BoxedProbeScope::enter();
                assert!(boxed_probe_scope());
            }
            assert!(boxed_probe_scope());
        }
        assert!(!boxed_probe_scope());
        let b = ColBuilder::for_type(Some(SqlType::Int), 0);
        assert!(matches!(b, ColBuilder::I64(..)));
    }

    #[test]
    fn prefers_boxed_probe_requires_index_join_and_no_typed_consumer() {
        let ij = |probe: Plan| Plan::IndexJoin {
            probe: Box::new(probe),
            table: "t".into(),
            probe_keys: vec![0],
            inner_keys: vec![0],
            predicate: None,
            projection: None,
            kind: JoinKind::Inner,
            probe_is_left: true,
        };
        // bare index join, even under point-wise operators → boxed probe
        let plan = ij(Plan::scan("probe")).sort(vec![0]).limit(5);
        assert!(prefers_boxed_probe(&plan));
        // an aggregate above (or anywhere) re-reads columns typed → keep typed
        let plan = ij(Plan::scan("probe"))
            .aggregate(vec![0], vec![crate::query::AggExpr::count_star("n")]);
        assert!(!prefers_boxed_probe(&plan));
        // a hash join below the probe side hashes chunk columns → keep typed
        let plan =
            ij(Plan::scan("a").hash_join(Plan::scan("b"), vec![0], vec![0], JoinKind::Inner));
        assert!(!prefers_boxed_probe(&plan));
        // no index join at all → nothing to recover
        assert!(!prefers_boxed_probe(&Plan::scan("probe")));
    }

    #[test]
    fn typed_hash_into_matches_per_value_hashing() {
        let vals = [
            Value::str("x"),
            Value::Null,
            Value::str("long enough to matter"),
        ];
        let mut b = ColBuilder::for_type(Some(SqlType::Str), 0);
        for v in &vals {
            b.push(v);
        }
        let d = b.finish();
        let mut acc = vec![KEY_SEED; vals.len()];
        let mut nulls = vec![false; vals.len()];
        d.hash_into(&mut acc, Some(&mut nulls));
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(acc[i], combine(KEY_SEED, hash_value(v)), "row {i}");
        }
        assert_eq!(nulls, vec![false, true, false]);
    }
}
