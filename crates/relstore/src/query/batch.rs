//! Columnar batch executor ([`ExecMode::Vectorized`]).
//!
//! Plans run batch-at-a-time over [`Chunk`]s of ~[`CHUNK_ROWS`] rows. A
//! chunk is a vector of [`Col`]umns plus an optional *selection vector* of
//! surviving row indices. Columns come in three representations:
//!
//! * `Dense` — owned values, one per physical row (scan/aggregate output);
//! * `Shared` — the same, behind an `Arc` (a column forwarded untouched);
//! * `Gather` — a shared source column plus a shared index vector: the
//!   value at row `i` is `src[idx[i]]`.
//!
//! `Gather` is the late-materialization trick that makes join chains
//! linear: a join emits its probe-side columns as gathers over the probe
//! chunk (one `Arc<Vec<u32>>` shared by every probe column) instead of
//! re-copying the accumulated prefix into fresh columns at every level.
//! Chained joins *compose* index vectors — u32 arithmetic, no `Value`
//! clones — and a hash join's build side is columnarized once and gathered
//! the same way. Values are cloned exactly once, at the final
//! chunk-to-rows boundary, which is the same copy the streaming executor
//! pays when its borrowed row views hit a materializing sink. Filters and
//! distinct-unions never copy either — they narrow the selection vector
//! and pass the columns through untouched.
//!
//! The executor is a drop-in replacement for the streaming path over the
//! same optimized plans and must emit **byte-identical rows in the same
//! order** (the cross-mode digest gate depends on it):
//!
//! * hash joins emit probe order × build insertion order, build on the
//!   estimated-smaller side (LEFT builds right), NULL keys never join,
//!   LEFT pads with build-width NULLs;
//! * aggregates emit groups in first-seen order and a global aggregate
//!   over zero rows still yields one row;
//! * `UnionDistinct` keeps first occurrences; `TopK` breaks ties by input
//!   sequence ([`TopKEntry`]);
//! * all aggregate arithmetic goes through the shared [`AggState`]
//!   (exact-`i64` SUM with overflow fallback, compensated float sums).
//!
//! Hash and group tables are pre-sized from planner cardinality estimates
//! (table live counts at the leaves); aggregate inputs that are bare
//! column references skip expression dispatch (`AggState`'s by-reference
//! column-loop methods); computed aggregate inputs are evaluated
//! column-at-a-time once per chunk.
//!
//! Each node publishes `relstore.batch.chunks.<op>` and
//! `relstore.batch.rows.<op>` counters next to the shared
//! `relstore.rows_out.<op>`; chunk fill rate is
//! `batch.rows / (batch.chunks × 1024)`. Join output chunks follow probe
//! chunk boundaries, so a high-fan-out join can emit chunks taller than
//! [`CHUNK_ROWS`]; consumers size off [`Chunk::live`], never the constant.

use crate::catalog::Database;
use crate::error::{StoreError, StoreResult};
use crate::expr::{Expr, RowAccess};
use crate::index::key_of;
use crate::query::exec::{index_join_equivalent, plan_op, rows_counter, AggState, TopKEntry};
use crate::query::plan::{AggFunc, JoinKind, Plan};
use crate::row::{sort_rows_by_columns, Relation, Row};
use crate::value::Value;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

#[allow(unused_imports)] // doc links
use crate::query::exec::ExecMode;

/// Target rows per [`Chunk`]. Large enough to amortize per-chunk operator
/// overhead, small enough that a chunk's columns stay cache-resident.
pub(crate) const CHUNK_ROWS: usize = 1024;

/// One column of a chunk (see the module docs for the representations).
enum Col {
    /// Owned dense values, one per physical row.
    Dense(Vec<Value>),
    /// Dense values shared with other chunks (pass-through / join source).
    Shared(Arc<Vec<Value>>),
    /// Lazily gathered: the value at row `i` is `src[idx[i]]`.
    Gather {
        src: Arc<Vec<Value>>,
        idx: Arc<Vec<u32>>,
    },
}

impl Col {
    /// The value at physical row `i`, if in range.
    fn get(&self, i: usize) -> Option<&Value> {
        match self {
            Col::Dense(v) => v.get(i),
            Col::Shared(v) => v.get(i),
            Col::Gather { src, idx } => idx.get(i).and_then(|&j| src.get(j as usize)),
        }
    }

    /// Convert to a shareable source column, cloning no values, and
    /// return the backing storage (for `Gather` the *source* — callers
    /// pair it with the composed index).
    fn into_shared(self) -> SharedCol {
        match self {
            Col::Dense(v) => (Arc::new(v), None),
            Col::Shared(v) => (v, None),
            Col::Gather { src, idx } => (src, Some(idx)),
        }
    }
}

/// A column converted to shareable form by [`Col::into_shared`]: the
/// backing storage plus the gather index when the column was gathered.
type SharedCol = (Arc<Vec<Value>>, Option<Arc<Vec<u32>>>);

/// A batch of rows in columnar layout. `sel` — when present — lists the
/// surviving *physical* row indices in order; operators that drop rows
/// (filter, distinct, limit over shared columns) narrow it instead of
/// compacting the columns.
pub(crate) struct Chunk {
    cols: Vec<Col>,
    /// Physical row count (columns may be empty when the row type has no
    /// columns, so this is tracked explicitly).
    height: usize,
    /// Surviving row indices in ascending order; `None` = all rows live.
    sel: Option<Vec<u32>>,
}

impl Chunk {
    fn dense(cols: Vec<Vec<Value>>, height: usize) -> Chunk {
        Chunk {
            cols: cols.into_iter().map(Col::Dense).collect(),
            height,
            sel: None,
        }
    }

    /// Number of selected (live) rows.
    fn live(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.height,
        }
    }

    /// Physical index of the `k`-th selected row (`k < self.live()`).
    fn idx(&self, k: usize) -> usize {
        match &self.sel {
            Some(s) => s.get(k).copied().unwrap_or_default() as usize,
            None => k,
        }
    }

    /// Gather physical row `i` into an owned row.
    fn row_at(&self, i: usize) -> Row {
        let mut row = Vec::with_capacity(self.cols.len());
        for col in &self.cols {
            if let Some(v) = col.get(i) {
                row.push(v.clone());
            }
        }
        row
    }

    /// Append every selected row, in order, onto `out` — the chunk is
    /// spent. Fully dense owned chunks transpose by moving the values;
    /// shared or gathered columns clone each value exactly once (the same
    /// copy a streaming sink pays when materializing a borrowed view).
    fn into_rows(mut self, out: &mut Vec<Row>) {
        out.reserve(self.live());
        let all_dense = self.cols.iter().all(|c| matches!(c, Col::Dense(_)));
        if all_dense && self.sel.is_none() {
            let mut its: Vec<std::vec::IntoIter<Value>> = self
                .cols
                .into_iter()
                .map(|c| match c {
                    Col::Dense(v) => v.into_iter(),
                    _ => Vec::new().into_iter(),
                })
                .collect();
            for _ in 0..self.height {
                let mut row = Vec::with_capacity(its.len());
                for it in &mut its {
                    if let Some(v) = it.next() {
                        row.push(v);
                    }
                }
                out.push(row);
            }
            return;
        }
        if all_dense {
            // selected rows are taken out of the owned columns in place
            // (the dropped remainder is never read again) — no re-clone
            if let Some(sel) = self.sel.take() {
                for i in sel {
                    let i = i as usize;
                    let mut row = Vec::with_capacity(self.cols.len());
                    for col in &mut self.cols {
                        if let Col::Dense(v) = col {
                            if let Some(v) = v.get_mut(i) {
                                row.push(std::mem::replace(v, Value::Null));
                            }
                        }
                    }
                    out.push(row);
                }
            }
            return;
        }
        for k in 0..self.live() {
            out.push(self.row_at(self.idx(k)));
        }
    }

    /// Keep only the first `n` selected rows.
    fn truncate_live(&mut self, n: usize) {
        match &mut self.sel {
            Some(s) => s.truncate(n),
            None => {
                if n >= self.height {
                    return;
                }
                if self.cols.iter().all(|c| matches!(c, Col::Dense(_))) {
                    for col in &mut self.cols {
                        if let Col::Dense(v) = col {
                            v.truncate(n);
                        }
                    }
                    self.height = n;
                } else {
                    // shared storage cannot be truncated — select a prefix
                    self.sel = Some((0..n as u32).collect());
                }
            }
        }
    }
}

/// One selected row of a chunk, readable through the shared expression
/// evaluator ([`Expr::eval_on`] / [`Expr::matches_on`]).
struct ChunkRow<'a> {
    chunk: &'a Chunk,
    row: usize,
}

impl RowAccess for ChunkRow<'_> {
    fn value_at(&self, i: usize) -> Option<&Value> {
        self.chunk.cols.get(i).and_then(|c| c.get(self.row))
    }
}

/// The consumer side of a chunked operator: return `false` to stop the
/// producer (early termination), `true` to keep receiving chunks.
type ChunkSink<'s> = dyn FnMut(Chunk) -> StoreResult<bool> + 's;

/// Accumulates emitted rows column-wise and flushes a dense chunk into the
/// downstream sink every [`CHUNK_ROWS`] rows (plus a final partial flush).
/// Used by the dense producers (scan, values, aggregate/sort/top-k
/// output); joins emit gather chunks directly (see [`JoinEmit`]).
struct Emitter<'a, 'b> {
    width: usize,
    cols: Vec<Vec<Value>>,
    height: usize,
    sink: &'a mut ChunkSink<'b>,
}

impl<'a, 'b> Emitter<'a, 'b> {
    fn new(width: usize, sink: &'a mut ChunkSink<'b>) -> Emitter<'a, 'b> {
        // Columns start empty and grow geometrically: most queries the E1
        // processes issue emit a handful of rows, and pre-reserving
        // CHUNK_ROWS per column would make the allocation dominate them.
        // Once a full chunk has been flushed the stream is known to be
        // large and the replacement columns are pre-sized (see `flush`).
        Emitter {
            width,
            cols: (0..width).map(|_| Vec::new()).collect(),
            height: 0,
            sink,
        }
    }

    /// Push the concatenation of `parts` as one row.
    fn push_concat(&mut self, parts: &[&[Value]]) -> StoreResult<bool> {
        let mut cols = self.cols.iter_mut();
        for part in parts {
            for v in *part {
                if let Some(col) = cols.next() {
                    col.push(v.clone());
                }
            }
        }
        self.bump()
    }

    /// Push `proj`-selected columns of `row` as one row.
    fn push_projected(&mut self, row: &[Value], proj: &[usize]) -> StoreResult<bool> {
        for (j, &src) in proj.iter().enumerate() {
            if let (Some(col), Some(v)) = (self.cols.get_mut(j), row.get(src)) {
                col.push(v.clone());
            }
        }
        self.bump()
    }

    /// Push an owned row (aggregate/sort/top-k output).
    fn push_owned(&mut self, row: Row) -> StoreResult<bool> {
        for (j, v) in row.into_iter().enumerate() {
            if let Some(col) = self.cols.get_mut(j) {
                col.push(v);
            }
        }
        self.bump()
    }

    fn bump(&mut self) -> StoreResult<bool> {
        self.height += 1;
        if self.height >= CHUNK_ROWS {
            self.flush()
        } else {
            Ok(true)
        }
    }

    /// Send the buffered rows downstream (no-op when empty). Returns the
    /// sink's verdict: `Ok(false)` = stop producing.
    fn flush(&mut self) -> StoreResult<bool> {
        if self.height == 0 {
            return Ok(true);
        }
        // a full chunk means more is probably coming — pre-size the next one
        let cap = if self.height >= CHUNK_ROWS {
            CHUNK_ROWS
        } else {
            0
        };
        let cols = std::mem::replace(
            &mut self.cols,
            (0..self.width).map(|_| Vec::with_capacity(cap)).collect(),
        );
        let chunk = Chunk::dense(cols, self.height);
        self.height = 0;
        (self.sink)(chunk)
    }
}

/// Turn a spent probe chunk into gather columns over `probe_idx` (the
/// physical probe row index of each output row). Every `Dense`/`Shared`
/// probe column shares one index `Arc`; `Gather` probe columns compose
/// their existing index with it — u32 reads, no `Value` clones. The memo
/// reuses one composition per distinct source index vector (columns
/// emitted by the same upstream join all share one).
fn gather_probe_cols(probe: Chunk, probe_idx: &Arc<Vec<u32>>) -> Vec<Col> {
    let mut memo: Vec<(*const Vec<u32>, Arc<Vec<u32>>)> = Vec::new();
    probe
        .cols
        .into_iter()
        .map(|col| {
            let (src, old_idx) = col.into_shared();
            let idx = match old_idx {
                None => probe_idx.clone(),
                Some(old) => {
                    let key = Arc::as_ptr(&old);
                    match memo.iter().find(|(p, _)| *p == key) {
                        Some((_, composed)) => composed.clone(),
                        None => {
                            let composed: Arc<Vec<u32>> = Arc::new(
                                probe_idx
                                    .iter()
                                    .map(|&k| old.get(k as usize).copied().unwrap_or_default())
                                    .collect(),
                            );
                            memo.push((key, composed.clone()));
                            composed
                        }
                    }
                }
            };
            Col::Gather { src, idx }
        })
        .collect()
}

/// Assemble one join output chunk: gathered probe columns and the inner
/// half, probe half first iff `probe_first`.
fn join_chunk(probe: Chunk, probe_idx: Vec<u32>, inner: Vec<Col>, probe_first: bool) -> Chunk {
    let height = probe_idx.len();
    let probe_idx = Arc::new(probe_idx);
    let probe_cols = gather_probe_cols(probe, &probe_idx);
    let mut cols = Vec::with_capacity(probe_cols.len() + inner.len());
    if probe_first {
        cols.extend(probe_cols);
        cols.extend(inner);
    } else {
        cols.extend(inner);
        cols.extend(probe_cols);
    }
    Chunk {
        cols,
        height,
        sel: None,
    }
}

/// Run a plan through the chunked executor, collecting into a relation —
/// the [`ExecMode::Vectorized`] entry point.
pub(crate) fn materialize_chunked(plan: &Plan, db: &Database) -> StoreResult<Relation> {
    let schema = plan.schema(db)?;
    let mut rows: Vec<Row> = Vec::new();
    drive(plan, db, &mut |c: Chunk| {
        c.into_rows(&mut rows);
        Ok(true)
    })?;
    Ok(Relation::new(schema, rows))
}

/// `dip-trace` counter name for a node's emitted chunk count.
fn chunks_counter(plan: &Plan) -> &'static str {
    match plan {
        Plan::Scan { .. } => "relstore.batch.chunks.scan",
        Plan::Values(_) => "relstore.batch.chunks.values",
        Plan::Filter { .. } => "relstore.batch.chunks.filter",
        Plan::Project { .. } => "relstore.batch.chunks.project",
        Plan::HashJoin { .. } => "relstore.batch.chunks.hash_join",
        Plan::IndexJoin { .. } => "relstore.batch.chunks.index_join",
        Plan::UnionAll(_) => "relstore.batch.chunks.union_all",
        Plan::UnionDistinct { .. } => "relstore.batch.chunks.union_distinct",
        Plan::Aggregate { .. } => "relstore.batch.chunks.aggregate",
        Plan::Sort { .. } => "relstore.batch.chunks.sort",
        Plan::Limit { .. } => "relstore.batch.chunks.limit",
        Plan::TopK { .. } => "relstore.batch.chunks.top_k",
    }
}

/// `dip-trace` counter name for a node's emitted (selected) row count —
/// `batch.rows / (batch.chunks × 1024)` is the node's chunk fill rate.
fn batch_rows_counter(plan: &Plan) -> &'static str {
    match plan {
        Plan::Scan { .. } => "relstore.batch.rows.scan",
        Plan::Values(_) => "relstore.batch.rows.values",
        Plan::Filter { .. } => "relstore.batch.rows.filter",
        Plan::Project { .. } => "relstore.batch.rows.project",
        Plan::HashJoin { .. } => "relstore.batch.rows.hash_join",
        Plan::IndexJoin { .. } => "relstore.batch.rows.index_join",
        Plan::UnionAll(_) => "relstore.batch.rows.union_all",
        Plan::UnionDistinct { .. } => "relstore.batch.rows.union_distinct",
        Plan::Aggregate { .. } => "relstore.batch.rows.aggregate",
        Plan::Sort { .. } => "relstore.batch.rows.sort",
        Plan::Limit { .. } => "relstore.batch.rows.limit",
        Plan::TopK { .. } => "relstore.batch.rows.top_k",
    }
}

/// Drive a node's chunk output into `sink`, publishing the per-node span
/// and counters. Returns `Ok(false)` iff `sink` requested termination.
fn drive(plan: &Plan, db: &Database, sink: &mut ChunkSink) -> StoreResult<bool> {
    let _span = dip_trace::span_cat(
        dip_trace::Layer::Relstore,
        plan_op(plan),
        dip_trace::Category::Processing,
    );
    let mut chunks: u64 = 0;
    let mut rows: u64 = 0;
    let result = exec_chunks(plan, db, &mut |c| {
        chunks += 1;
        rows += c.live() as u64;
        sink(c)
    });
    // rows_out stays populated in vectorized mode so records are
    // comparable across exec modes; chunks/rows add the batching view
    // (skipped for empty streams so tiny point queries stay cheap).
    dip_trace::count(rows_counter(plan), rows);
    if chunks > 0 {
        dip_trace::count(chunks_counter(plan), chunks);
        dip_trace::count(batch_rows_counter(plan), rows);
    }
    result
}

/// Extract the join/group key columns of one selected chunk row into `buf`.
fn gather_key(chunk: &Chunk, row: usize, cols: &[usize], buf: &mut Vec<Value>) -> StoreResult<()> {
    buf.clear();
    let r = ChunkRow { chunk, row };
    for &c in cols {
        match r.value_at(c) {
            Some(v) => buf.push(v.clone()),
            None => {
                return Err(StoreError::Eval(format!("column index {c} out of range")));
            }
        }
    }
    Ok(())
}

/// Per-chunk source of one aggregate's input values: a borrowed chunk
/// column (bare `Expr::Col` inputs — no expression dispatch per row), a
/// dense pre-evaluated vector in selection order, or nothing (`COUNT(*)`).
enum AggSrc<'a> {
    Col(&'a Col),
    Computed(Vec<Value>),
    Star,
}

/// Apply one input value to an aggregate state — the by-reference mirror of
/// [`AggState::update`]'s `Some(v)` path.
fn apply_agg(st: &mut AggState, v: &Value) {
    match st.func() {
        AggFunc::Count => st.count_value(v),
        AggFunc::Sum | AggFunc::Avg => st.add_value(v),
        AggFunc::Min => st.min_value(v),
        AggFunc::Max => st.max_value(v),
    }
}

fn exec_chunks(plan: &Plan, db: &Database, sink: &mut ChunkSink) -> StoreResult<bool> {
    match plan {
        Plan::Scan {
            table,
            predicate,
            projection,
        } => {
            let t = db.table(table)?;
            let width = match projection {
                Some(p) => p.len(),
                None => t.schema.len(),
            };
            let mut em = Emitter::new(width, sink);
            let keep_going = match projection {
                None => t.stream_rows(predicate.as_ref(), &mut |row| em.push_concat(&[row]))?,
                Some(p) => {
                    t.stream_rows(predicate.as_ref(), &mut |row| em.push_projected(row, p))?
                }
            };
            if !keep_going {
                return Ok(false);
            }
            em.flush()
        }
        Plan::Values(rel) => {
            let mut em = Emitter::new(rel.schema.len(), sink);
            for r in &rel.rows {
                if !em.push_concat(&[r.as_slice()])? {
                    return Ok(false);
                }
            }
            em.flush()
        }
        Plan::Filter { input, predicate } => drive(input, db, &mut |c: Chunk| {
            let mut sel: Vec<u32> = Vec::with_capacity(c.live());
            for k in 0..c.live() {
                let i = c.idx(k);
                if predicate.matches_on(&ChunkRow { chunk: &c, row: i })? {
                    sel.push(i as u32);
                }
            }
            if sel.is_empty() {
                return Ok(true);
            }
            let Chunk { cols, height, .. } = c;
            sink(Chunk {
                cols,
                height,
                sel: Some(sel),
            })
        }),
        Plan::Project { input, exprs } => drive(input, db, &mut |c: Chunk| {
            let live = c.live();
            if live == 0 {
                return Ok(true);
            }
            // Bare-column projections forward the input column: without a
            // selection it is shared as-is, with one it becomes a gather
            // over the selection — no values move either way. Computed
            // expressions evaluate column-at-a-time into dense output.
            let sel_idx: Option<Arc<Vec<u32>>> = c.sel.clone().map(Arc::new);
            let mut shared: Vec<SharedCol> = Vec::with_capacity(c.cols.len());
            let mut memo: Vec<(*const Vec<u32>, Arc<Vec<u32>>)> = Vec::new();
            let mut cols_in = c.cols;
            for col in cols_in.drain(..) {
                shared.push(col.into_shared());
            }
            let resel = Chunk {
                cols: Vec::new(),
                height: c.height,
                sel: c.sel,
            };
            let mut out_cols: Vec<Col> = Vec::with_capacity(exprs.len());
            for p in exprs {
                match &p.expr {
                    Expr::Col(j) => {
                        let (src, old_idx) = shared.get(*j).cloned().ok_or_else(|| {
                            StoreError::Eval(format!("column index {j} out of range"))
                        })?;
                        let idx = match (&sel_idx, old_idx) {
                            (None, None) => None,
                            (None, Some(old)) => Some(old),
                            (Some(sel), None) => Some(sel.clone()),
                            (Some(sel), Some(old)) => {
                                let key = Arc::as_ptr(&old);
                                Some(match memo.iter().find(|(k, _)| *k == key) {
                                    Some((_, composed)) => composed.clone(),
                                    None => {
                                        let composed: Arc<Vec<u32>> = Arc::new(
                                            sel.iter()
                                                .map(|&k| {
                                                    old.get(k as usize).copied().unwrap_or_default()
                                                })
                                                .collect(),
                                        );
                                        memo.push((key, composed.clone()));
                                        composed
                                    }
                                })
                            }
                        };
                        out_cols.push(match idx {
                            None => Col::Shared(src),
                            Some(idx) => Col::Gather { src, idx },
                        });
                    }
                    e => {
                        // rebuild a view with the original columns for the
                        // expression evaluator
                        let view = Chunk {
                            cols: shared
                                .iter()
                                .map(|s| match s {
                                    (src, None) => Col::Shared(src.clone()),
                                    (src, Some(idx)) => Col::Gather {
                                        src: src.clone(),
                                        idx: idx.clone(),
                                    },
                                })
                                .collect(),
                            height: resel.height,
                            sel: resel.sel.clone(),
                        };
                        let mut out = Vec::with_capacity(live);
                        for k in 0..live {
                            out.push(e.eval_on(&ChunkRow {
                                chunk: &view,
                                row: view.idx(k),
                            })?);
                        }
                        out_cols.push(Col::Dense(out));
                    }
                }
            }
            // Every output column now addresses 0..live in selection
            // order: with a selection present, bare columns composed it
            // into their gather index and computed columns evaluated the
            // selected rows; without one, live == physical height.
            sink(Chunk {
                cols: out_cols,
                height: live,
                sel: None,
            })
        }),
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            kind,
        } => {
            if left_keys.len() != right_keys.len() {
                return Err(StoreError::Invalid("join key arity mismatch".into()));
            }
            // Same build-side choice as the streaming executor: build on the
            // estimated-smaller side; LEFT joins build on the right.
            let build_right =
                *kind == JoinKind::Left || right.estimate_rows(db) <= left.estimate_rows(db);
            let (build_plan, probe_plan, build_keys, probe_keys, probe_is_left) = if build_right {
                (&**right, &**left, right_keys, left_keys, true)
            } else {
                (&**left, &**right, left_keys, right_keys, false)
            };
            // Pre-size from the planner's cardinality estimate (table live
            // counts at the leaves), then exactly once the build is in hand.
            let mut build_rows: Vec<Row> = Vec::with_capacity(build_plan.estimate_rows(db));
            drive(build_plan, db, &mut |c: Chunk| {
                c.into_rows(&mut build_rows);
                Ok(true)
            })?;
            let mut table: HashMap<Vec<Value>, Vec<usize>> =
                HashMap::with_capacity(build_rows.len());
            for (i, r) in build_rows.iter().enumerate() {
                let key = key_of(r, build_keys);
                if key.iter().any(|v| v.is_null()) {
                    continue; // NULL keys never join
                }
                table.entry(key).or_default().push(i);
            }
            let build_width = build_plan.schema(db)?.len();
            let probe_width = probe_plan.schema(db)?.len();
            let left_pad = *kind == JoinKind::Left && probe_is_left;
            // Columnarize the build side once (values move, not clone) and
            // append one all-NULL row at index `build_len`: LEFT-join pad
            // emissions gather it like any real match.
            let build_len = build_rows.len();
            let mut bcols: Vec<Vec<Value>> = (0..build_width)
                .map(|_| Vec::with_capacity(build_len + 1))
                .collect();
            for row in build_rows.drain(..) {
                for (j, v) in row.into_iter().enumerate() {
                    if let Some(col) = bcols.get_mut(j) {
                        col.push(v);
                    }
                }
            }
            let bcols: Vec<Arc<Vec<Value>>> = bcols
                .into_iter()
                .map(|mut col| {
                    col.push(Value::Null);
                    Arc::new(col)
                })
                .collect();
            let _ = probe_width;
            let mut key: Vec<Value> = Vec::with_capacity(probe_keys.len());
            drive(probe_plan, db, &mut |c: Chunk| {
                let mut probe_idx: Vec<u32> = Vec::new();
                let mut build_idx: Vec<u32> = Vec::new();
                for k in 0..c.live() {
                    let i = c.idx(k);
                    gather_key(&c, i, probe_keys, &mut key)?;
                    let matches = if key.iter().any(|v| v.is_null()) {
                        None
                    } else {
                        table.get(key.as_slice())
                    };
                    match matches {
                        Some(slots) => {
                            for &s in slots {
                                probe_idx.push(i as u32);
                                build_idx.push(s as u32);
                            }
                        }
                        None => {
                            if left_pad {
                                probe_idx.push(i as u32);
                                build_idx.push(build_len as u32);
                            }
                        }
                    }
                }
                if probe_idx.is_empty() {
                    return Ok(true);
                }
                let build_idx = Arc::new(build_idx);
                let inner: Vec<Col> = bcols
                    .iter()
                    .map(|src| Col::Gather {
                        src: src.clone(),
                        idx: build_idx.clone(),
                    })
                    .collect();
                sink(join_chunk(c, probe_idx, inner, probe_is_left))
            })
        }
        Plan::IndexJoin {
            probe,
            table,
            probe_keys,
            inner_keys,
            predicate,
            projection,
            kind,
            probe_is_left,
        } => {
            let t = db.table(table)?;
            let Some(session) = t.probe_on(inner_keys) else {
                // index dropped since planning: degrade to the equivalent
                // hash join rather than failing the query
                return exec_chunks(&index_join_equivalent(plan), db, sink);
            };
            let inner_width = match projection {
                Some(p) => p.len(),
                None => t.schema.len(),
            };
            // the planner only selects LEFT index joins with probe = left
            let left_pad = *kind == JoinKind::Left && *probe_is_left;
            let probe_first = *probe_is_left;
            let mut key: Vec<Value> = Vec::with_capacity(probe_keys.len());
            drive(probe, db, &mut |c: Chunk| {
                // probe columns are gathered (no clones); matched inner
                // rows are cloned once into dense output columns
                let mut probe_idx: Vec<u32> = Vec::new();
                let mut icols: Vec<Vec<Value>> = (0..inner_width).map(|_| Vec::new()).collect();
                for k in 0..c.live() {
                    let i = c.idx(k);
                    gather_key(&c, i, probe_keys, &mut key)?;
                    if key.iter().any(|v| v.is_null()) {
                        // NULL keys never join; LEFT probes still emit padded
                        if left_pad {
                            probe_idx.push(i as u32);
                            for col in &mut icols {
                                col.push(Value::Null);
                            }
                        }
                        continue;
                    }
                    let mut matched = false;
                    session.lookup_each(&key, &mut |ir| {
                        let keep = match predicate {
                            Some(p) => p.matches_on(ir)?,
                            None => true,
                        };
                        if !keep {
                            return Ok(true);
                        }
                        matched = true;
                        probe_idx.push(i as u32);
                        match projection {
                            Some(p) => {
                                for (col, &x) in icols.iter_mut().zip(p) {
                                    col.push(ir.get(x).cloned().unwrap_or(Value::Null));
                                }
                            }
                            None => {
                                for (col, v) in icols.iter_mut().zip(ir) {
                                    col.push(v.clone());
                                }
                            }
                        }
                        Ok(true)
                    })?;
                    if !matched && left_pad {
                        probe_idx.push(i as u32);
                        for col in &mut icols {
                            col.push(Value::Null);
                        }
                    }
                }
                if probe_idx.is_empty() {
                    return Ok(true);
                }
                let inner: Vec<Col> = icols.into_iter().map(Col::Dense).collect();
                sink(join_chunk(c, probe_idx, inner, probe_first))
            })
        }
        Plan::UnionAll(inputs) => {
            let width = plan.schema(db)?.len();
            for i in inputs {
                let w = i.schema(db)?.len();
                if w != width {
                    return Err(StoreError::Invalid(format!(
                        "union arity mismatch: {w} vs {width}"
                    )));
                }
            }
            for i in inputs {
                if !drive(i, db, sink)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Plan::UnionDistinct { inputs, key } => {
            let width = plan.schema(db)?.len();
            for i in inputs {
                if i.schema(db)?.len() != width {
                    return Err(StoreError::Invalid("union arity mismatch".into()));
                }
            }
            let mut seen: HashSet<Vec<Value>> = HashSet::new();
            let mut kbuf: Vec<Value> = Vec::new();
            for inp in inputs {
                let keep_going = drive(inp, db, &mut |c: Chunk| {
                    let mut sel: Vec<u32> = Vec::with_capacity(c.live());
                    for k in 0..c.live() {
                        let i = c.idx(k);
                        let fresh = match key {
                            Some(cols) => {
                                gather_key(&c, i, cols, &mut kbuf)?;
                                if seen.contains(kbuf.as_slice()) {
                                    false
                                } else {
                                    seen.insert(std::mem::take(&mut kbuf))
                                }
                            }
                            None => seen.insert(c.row_at(i)),
                        };
                        if fresh {
                            sel.push(i as u32);
                        }
                    }
                    if sel.is_empty() {
                        return Ok(true);
                    }
                    let Chunk { cols, height, .. } = c;
                    sink(Chunk {
                        cols,
                        height,
                        sel: Some(sel),
                    })
                })?;
                if !keep_going {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            // Pre-size the group table from the planner's output estimate.
            let mut groups: HashMap<Vec<Value>, Vec<AggState>> =
                HashMap::with_capacity(plan.estimate_rows(db).max(1));
            let mut order: Vec<Vec<Value>> = Vec::new();
            drive(input, db, &mut |c: Chunk| {
                let live = c.live();
                // Resolve each aggregate's input source once per chunk:
                // bare columns are read in place, computed expressions are
                // evaluated column-at-a-time into a dense vector.
                let mut srcs: Vec<AggSrc> = Vec::with_capacity(aggs.len());
                for a in aggs {
                    let src = match &a.input {
                        None => AggSrc::Star,
                        Some(Expr::Col(j)) => {
                            let col = c.cols.get(*j).ok_or_else(|| {
                                StoreError::Eval(format!("column index {j} out of range"))
                            })?;
                            AggSrc::Col(col)
                        }
                        Some(e) => {
                            let mut vals = Vec::with_capacity(live);
                            for k in 0..live {
                                vals.push(e.eval_on(&ChunkRow {
                                    chunk: &c,
                                    row: c.idx(k),
                                })?);
                            }
                            AggSrc::Computed(vals)
                        }
                    };
                    srcs.push(src);
                }
                if group_by.is_empty() {
                    // Global aggregate: one state vector, tight per-column
                    // loops — the type-specialized fast path.
                    if groups.is_empty() {
                        order.push(Vec::new());
                        groups.insert(
                            Vec::new(),
                            aggs.iter().map(|a| AggState::new(a.func)).collect(),
                        );
                    }
                    let Some(states) = groups.get_mut(&[] as &[Value]) else {
                        return Ok(true);
                    };
                    for (st, src) in states.iter_mut().zip(&srcs) {
                        match src {
                            AggSrc::Star => {
                                // mirrors `update(None)`: only COUNT reacts
                                if st.func() == AggFunc::Count {
                                    for _ in 0..live {
                                        st.count_row();
                                    }
                                }
                            }
                            AggSrc::Col(col) => match st.func() {
                                AggFunc::Count => {
                                    for k in 0..live {
                                        if let Some(v) = col.get(c.idx(k)) {
                                            st.count_value(v);
                                        }
                                    }
                                }
                                AggFunc::Sum | AggFunc::Avg => {
                                    for k in 0..live {
                                        if let Some(v) = col.get(c.idx(k)) {
                                            st.add_value(v);
                                        }
                                    }
                                }
                                AggFunc::Min => {
                                    for k in 0..live {
                                        if let Some(v) = col.get(c.idx(k)) {
                                            st.min_value(v);
                                        }
                                    }
                                }
                                AggFunc::Max => {
                                    for k in 0..live {
                                        if let Some(v) = col.get(c.idx(k)) {
                                            st.max_value(v);
                                        }
                                    }
                                }
                            },
                            AggSrc::Computed(vals) => {
                                for v in vals {
                                    apply_agg(st, v);
                                }
                            }
                        }
                    }
                } else {
                    // one reused key buffer: existing groups (the common
                    // case) pay no allocation per row
                    let mut kbuf: Vec<Value> = Vec::with_capacity(group_by.len());
                    for k in 0..live {
                        let i = c.idx(k);
                        gather_key(&c, i, group_by, &mut kbuf)?;
                        let states = match groups.get_mut(kbuf.as_slice()) {
                            Some(s) => s,
                            None => {
                                order.push(kbuf.clone());
                                groups.entry(std::mem::take(&mut kbuf)).or_insert_with(|| {
                                    aggs.iter().map(|a| AggState::new(a.func)).collect()
                                })
                            }
                        };
                        for (st, src) in states.iter_mut().zip(&srcs) {
                            match src {
                                AggSrc::Star => {
                                    if st.func() == AggFunc::Count {
                                        st.count_row();
                                    }
                                }
                                AggSrc::Col(col) => {
                                    if let Some(v) = col.get(i) {
                                        apply_agg(st, v);
                                    }
                                }
                                AggSrc::Computed(vals) => {
                                    if let Some(v) = vals.get(k) {
                                        apply_agg(st, v);
                                    }
                                }
                            }
                        }
                    }
                }
                Ok(true)
            })?;
            // Global aggregate over zero rows still yields one row.
            if groups.is_empty() && group_by.is_empty() {
                order.push(vec![]);
                groups.insert(vec![], aggs.iter().map(|a| AggState::new(a.func)).collect());
            }
            let mut em = Emitter::new(group_by.len() + aggs.len(), sink);
            for key in order {
                let Some(states) = groups.remove(&key) else {
                    continue;
                };
                let mut row = key;
                for st in states {
                    row.push(st.finish());
                }
                if !em.push_owned(row)? {
                    return Ok(false);
                }
            }
            em.flush()
        }
        Plan::Sort { input, keys } => {
            let mut rows: Vec<Row> = Vec::new();
            drive(input, db, &mut |c: Chunk| {
                c.into_rows(&mut rows);
                Ok(true)
            })?;
            sort_rows_by_columns(&mut rows, keys);
            let width = plan.schema(db)?.len();
            let mut em = Emitter::new(width, sink);
            for row in rows {
                if !em.push_owned(row)? {
                    return Ok(false);
                }
            }
            em.flush()
        }
        Plan::Limit { input, n } => {
            let mut remaining = *n;
            if remaining == 0 {
                return Ok(true);
            }
            let mut downstream_stop = false;
            drive(input, db, &mut |mut c: Chunk| {
                if c.live() > remaining {
                    c.truncate_live(remaining);
                }
                remaining -= c.live();
                if !sink(c)? {
                    downstream_stop = true;
                    return Ok(false);
                }
                Ok(remaining > 0)
            })?;
            Ok(!downstream_stop)
        }
        Plan::TopK { input, keys, n } => {
            let n = *n;
            if n == 0 {
                return Ok(true);
            }
            // Same bounded heap as the streaming path: ordered by (sort
            // key, input sequence) so ties reproduce the stable sort.
            let mut heap: BinaryHeap<TopKEntry> = BinaryHeap::with_capacity(n + 1);
            let mut seq = 0usize;
            let mut kbuf: Vec<Value> = Vec::with_capacity(keys.len());
            drive(input, db, &mut |c: Chunk| {
                for k in 0..c.live() {
                    let i = c.idx(k);
                    gather_key(&c, i, keys, &mut kbuf)?;
                    if heap.len() >= n {
                        // a row entering now carries the largest seq, so on
                        // a key tie it sorts after the current worst and
                        // cannot displace it — only a strictly smaller key
                        // wins, and everything else skips materialization
                        let displaces = heap
                            .peek()
                            .is_some_and(|worst| kbuf.as_slice() < worst.key.as_slice());
                        seq += 1;
                        if !displaces {
                            continue;
                        }
                        heap.pop();
                        heap.push(TopKEntry {
                            key: std::mem::take(&mut kbuf),
                            seq: seq - 1,
                            row: c.row_at(i),
                        });
                    } else {
                        heap.push(TopKEntry {
                            key: std::mem::take(&mut kbuf),
                            seq,
                            row: c.row_at(i),
                        });
                        seq += 1;
                    }
                }
                Ok(true)
            })?;
            let width = plan.schema(db)?.len();
            let mut em = Emitter::new(width, sink);
            for e in heap.into_sorted_vec() {
                if !em.push_owned(e.row)? {
                    return Ok(false);
                }
            }
            em.flush()
        }
    }
}
