//! Rows and materialized relations.

use crate::schema::SchemaRef;
use crate::value::Value;
use std::fmt;

/// A row is a plain vector of values, positionally matching a schema.
pub type Row = Vec<Value>;

/// A materialized relation: a schema plus a bag of rows. This is the unit
/// exchanged between the query executor, the integration engines and the
/// service layer.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    pub schema: SchemaRef,
    pub rows: Vec<Row>,
}

impl Relation {
    pub fn new(schema: SchemaRef, rows: Vec<Row>) -> Relation {
        Relation { schema, rows }
    }

    pub fn empty(schema: SchemaRef) -> Relation {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Value at `(row, column-name)`; panics on bad coordinates (test aid).
    pub fn get(&self, row: usize, col: &str) -> &Value {
        let idx = self.schema.index_of(col).expect("column exists");
        &self.rows[row][idx]
    }

    /// Iterate one column by name.
    pub fn column_values<'a>(&'a self, col: &str) -> impl Iterator<Item = &'a Value> {
        let idx = self.schema.index_of(col).expect("column exists");
        self.rows.iter().map(move |r| &r[idx])
    }

    /// Sort rows by the given key columns (ascending, total order); useful
    /// for deterministic comparisons in tests and verification.
    pub fn sort_by_columns(&mut self, cols: &[usize]) {
        sort_rows_by_columns(&mut self.rows, cols);
    }

    /// A rendered, aligned table — handy in examples and failure messages.
    pub fn render(&self, max_rows: usize) -> String {
        let names = self.schema.names();
        let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
        let shown = self.rows.iter().take(max_rows);
        let rendered: Vec<Vec<String>> = shown
            .map(|r| r.iter().map(|v| v.render()).collect())
            .collect();
        for r in &rendered {
            for (i, cell) in r.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, n) in names.iter().enumerate() {
            out.push_str(&format!("{:width$} ", n, width = widths[i]));
        }
        out.push('\n');
        for r in &rendered {
            for (i, cell) in r.iter().enumerate() {
                out.push_str(&format!("{:width$} ", cell, width = widths[i]));
            }
            out.push('\n');
        }
        if self.rows.len() > max_rows {
            out.push_str(&format!("… {} more rows\n", self.rows.len() - max_rows));
        }
        out
    }
}

/// Stable-sort a row buffer by the given key columns (ascending, total
/// order). Shared by [`Relation::sort_by_columns`] and the executor's sort
/// and top-K operators, which must agree exactly on ordering.
pub fn sort_rows_by_columns(rows: &mut [Row], cols: &[usize]) {
    rows.sort_by(|a, b| {
        for &c in cols {
            let ord = a[c].total_cmp(&b[c]);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(20))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelSchema;
    use crate::value::SqlType;

    #[test]
    fn get_and_sort() {
        let schema = RelSchema::of(&[("id", SqlType::Int), ("name", SqlType::Str)]).shared();
        let mut rel = Relation::new(
            schema,
            vec![
                vec![Value::Int(2), Value::str("b")],
                vec![Value::Int(1), Value::str("a")],
            ],
        );
        assert_eq!(rel.get(0, "name"), &Value::str("b"));
        rel.sort_by_columns(&[0]);
        assert_eq!(rel.get(0, "id"), &Value::Int(1));
        let names: Vec<String> = rel.column_values("name").map(|v| v.render()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn render_truncates() {
        let schema = RelSchema::of(&[("x", SqlType::Int)]).shared();
        let rel = Relation::new(schema, (0..5).map(|i| vec![Value::Int(i)]).collect());
        let s = rel.render(2);
        assert!(s.contains("… 3 more rows"));
    }
}
