//! Hash and B-tree indexes over table slots.
//!
//! Indexes map a *key tuple* (values of the indexed columns) to the slot
//! numbers of matching rows. Unique indexes reject duplicate key tuples;
//! non-unique indexes keep a postings list per key. Keys containing `Null`
//! are not indexed (SQL unique semantics: NULLs never collide).

use crate::value::Value;
use std::collections::{BTreeMap, HashMap};

/// A key tuple extracted from a row.
pub type KeyTuple = Vec<Value>;

/// Extract the key tuple for `cols` from a row.
pub fn key_of(row: &[Value], cols: &[usize]) -> KeyTuple {
    cols.iter().map(|&c| row[c].clone()).collect()
}

/// True if any component of the key is NULL (such keys are not indexed).
pub fn key_has_null(key: &[Value]) -> bool {
    key.iter().any(|v| v.is_null())
}

/// The physical structure backing an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    Hash,
    BTree,
}

#[derive(Debug)]
enum Store {
    Hash(HashMap<KeyTuple, Vec<usize>>),
    BTree(BTreeMap<KeyTuple, Vec<usize>>),
}

/// A secondary (or primary) index over a table.
#[derive(Debug)]
pub struct Index {
    pub name: String,
    pub columns: Vec<usize>,
    pub unique: bool,
    store: Store,
}

impl Index {
    pub fn new(
        name: impl Into<String>,
        columns: Vec<usize>,
        unique: bool,
        kind: IndexKind,
    ) -> Index {
        let store = match kind {
            IndexKind::Hash => Store::Hash(HashMap::new()),
            IndexKind::BTree => Store::BTree(BTreeMap::new()),
        };
        Index {
            name: name.into(),
            columns,
            unique,
            store,
        }
    }

    pub fn kind(&self) -> IndexKind {
        match self.store {
            Store::Hash(_) => IndexKind::Hash,
            Store::BTree(_) => IndexKind::BTree,
        }
    }

    /// Whether inserting `row` at `slot` would violate uniqueness.
    pub fn would_conflict(&self, row: &[Value]) -> bool {
        if !self.unique {
            return false;
        }
        let key = key_of(row, &self.columns);
        if key_has_null(&key) {
            return false;
        }
        self.contains_key(&key)
    }

    /// Whether any row is indexed under exactly `key` — a uniqueness probe
    /// that allocates nothing.
    pub fn contains_key(&self, key: &[Value]) -> bool {
        !self.lookup_ref(key).is_empty()
    }

    /// Register a row at `slot`.
    pub fn insert(&mut self, row: &[Value], slot: usize) {
        self.insert_key(key_of(row, &self.columns), slot);
    }

    /// Register a precomputed key tuple at `slot` — lets bulk loaders that
    /// already extracted the key for a uniqueness probe reuse it instead of
    /// cloning the column values a second time.
    pub fn insert_key(&mut self, key: KeyTuple, slot: usize) {
        if key_has_null(&key) {
            return;
        }
        match &mut self.store {
            Store::Hash(m) => m.entry(key).or_default().push(slot),
            Store::BTree(m) => m.entry(key).or_default().push(slot),
        }
    }

    /// Unregister a row previously at `slot`.
    pub fn remove(&mut self, row: &[Value], slot: usize) {
        let key = key_of(row, &self.columns);
        if key_has_null(&key) {
            return;
        }
        let entry = match &mut self.store {
            Store::Hash(m) => m.get_mut(&key),
            Store::BTree(m) => m.get_mut(&key),
        };
        if let Some(slots) = entry {
            slots.retain(|&s| s != slot);
            if slots.is_empty() {
                match &mut self.store {
                    Store::Hash(m) => {
                        m.remove(&key);
                    }
                    Store::BTree(m) => {
                        m.remove(&key);
                    }
                }
            }
        }
    }

    /// Slots matching an exact key tuple (owned copy; prefer
    /// [`Index::lookup_ref`] on hot paths).
    pub fn lookup(&self, key: &[Value]) -> Vec<usize> {
        self.lookup_ref(key).to_vec()
    }

    /// Slots matching an exact key tuple, borrowed from the postings list —
    /// the per-probe path of an index nested-loop join, so no clone.
    pub fn lookup_ref(&self, key: &[Value]) -> &[usize] {
        let slots = match &self.store {
            Store::Hash(m) => m.get(key),
            Store::BTree(m) => m.get(key),
        };
        slots.map_or(&[], |v| v.as_slice())
    }

    /// Slots with key in `[lo, hi]` (inclusive); only supported for B-tree
    /// indexes — hash indexes return all slots unsorted so callers must not
    /// rely on range semantics there.
    pub fn range(&self, lo: &[Value], hi: &[Value]) -> Vec<usize> {
        match &self.store {
            Store::BTree(m) => m
                .range(lo.to_vec()..=hi.to_vec())
                .flat_map(|(_, slots)| slots.iter().copied())
                .collect(),
            Store::Hash(m) => m
                .iter()
                .filter(|(k, _)| k.as_slice() >= lo && k.as_slice() <= hi)
                .flat_map(|(_, slots)| slots.iter().copied())
                .collect(),
        }
    }

    /// Every (key, postings) pair in a deterministic order (keys sorted by
    /// their debug rendering, postings sorted numerically) — the byte-
    /// identity dump used by transaction-rollback tests.
    pub fn entries(&self) -> Vec<(KeyTuple, Vec<usize>)> {
        let mut out: Vec<(KeyTuple, Vec<usize>)> = match &self.store {
            Store::Hash(m) => m.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
            Store::BTree(m) => m.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        };
        for (_, slots) in &mut out {
            slots.sort_unstable();
        }
        out.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
        out
    }

    /// Number of distinct keys currently indexed.
    pub fn distinct_keys(&self) -> usize {
        match &self.store {
            Store::Hash(m) => m.len(),
            Store::BTree(m) => m.len(),
        }
    }

    pub fn clear(&mut self) {
        match &mut self.store {
            Store::Hash(m) => m.clear(),
            Store::BTree(m) => m.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(i: i64, s: &str) -> Vec<Value> {
        vec![Value::Int(i), Value::str(s)]
    }

    #[test]
    fn unique_hash_index() {
        let mut ix = Index::new("pk", vec![0], true, IndexKind::Hash);
        ix.insert(&row(1, "a"), 0);
        ix.insert(&row(2, "b"), 1);
        assert!(ix.would_conflict(&row(1, "zzz")));
        assert!(!ix.would_conflict(&row(3, "c")));
        assert_eq!(ix.lookup(&[Value::Int(2)]), vec![1]);
        ix.remove(&row(2, "b"), 1);
        assert!(ix.lookup(&[Value::Int(2)]).is_empty());
        assert_eq!(ix.distinct_keys(), 1);
    }

    #[test]
    fn null_keys_never_conflict() {
        let mut ix = Index::new("u", vec![1], true, IndexKind::Hash);
        ix.insert(&[Value::Int(1), Value::Null], 0);
        assert!(!ix.would_conflict(&[Value::Int(2), Value::Null]));
        assert_eq!(ix.distinct_keys(), 0);
    }

    #[test]
    fn btree_range() {
        let mut ix = Index::new("b", vec![0], false, IndexKind::BTree);
        for i in 0..10 {
            ix.insert(&row(i, "x"), i as usize);
        }
        let mut slots = ix.range(&[Value::Int(3)], &[Value::Int(6)]);
        slots.sort();
        assert_eq!(slots, vec![3, 4, 5, 6]);
    }

    #[test]
    fn non_unique_postings() {
        let mut ix = Index::new("n", vec![1], false, IndexKind::Hash);
        ix.insert(&row(1, "a"), 0);
        ix.insert(&row(2, "a"), 1);
        let mut slots = ix.lookup(&[Value::str("a")]);
        slots.sort();
        assert_eq!(slots, vec![0, 1]);
    }
}
