//! The database catalog: named tables, INSERT triggers, stored procedures
//! and materialized views.
//!
//! This is the "one DBMS installation with eleven database instances" of the
//! DIPBench environment — each external system gets its own [`Database`].
//! Triggers and stored procedures are the two mechanisms the paper's
//! federated-DBMS reference implementation is built from (paper Fig. 9):
//! message-driven processes become INSERT triggers on queue tables, and
//! time-driven processes become stored procedures.

use crate::error::{StoreError, StoreResult};
use crate::mview::MatView;
use crate::row::{Relation, Row};
use crate::table::Table;
use crate::value::Value;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// An INSERT trigger body: receives the database and the just-inserted rows
/// (the `inserted` logical table of the paper's Fig. 9a).
pub type TriggerFn = dyn Fn(&Database, &[Row]) -> StoreResult<()> + Send + Sync;

/// A stored procedure body: receives the database and positional arguments,
/// optionally returning a result relation.
pub type ProcFn = dyn Fn(&Database, &[Value]) -> StoreResult<Option<Relation>> + Send + Sync;

#[derive(Clone)]
struct Trigger {
    name: String,
    body: Arc<TriggerFn>,
}

/// A named in-memory database.
pub struct Database {
    pub name: String,
    tables: RwLock<HashMap<String, Arc<Table>>>,
    triggers: RwLock<HashMap<String, Vec<Trigger>>>,
    procs: RwLock<HashMap<String, Arc<ProcFn>>>,
    views: RwLock<HashMap<String, Arc<MatView>>>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("name", &self.name)
            .field("tables", &self.table_names())
            .finish()
    }
}

impl Database {
    pub fn new(name: impl Into<String>) -> Database {
        Database {
            name: name.into(),
            tables: RwLock::new(HashMap::new()),
            triggers: RwLock::new(HashMap::new()),
            procs: RwLock::new(HashMap::new()),
            views: RwLock::new(HashMap::new()),
        }
    }

    /// Register a table; replaces any table with the same (case-insensitive)
    /// name.
    pub fn create_table(&self, table: Table) -> Arc<Table> {
        // `into_shared` arms the table's transaction machinery: catalog
        // tables always participate in undo-logged scopes.
        let t = table.into_shared();
        self.tables.write().insert(t.name.to_lowercase(), t.clone());
        t
    }

    pub fn table(&self, name: &str) -> StoreResult<Arc<Table>> {
        self.tables
            .read()
            .get(&name.to_lowercase())
            .cloned()
            .ok_or_else(|| StoreError::NoSuchTable(format!("{}.{}", self.name, name)))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains_key(&name.to_lowercase())
    }

    pub fn drop_table(&self, name: &str) -> bool {
        self.tables.write().remove(&name.to_lowercase()).is_some()
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Insert through the trigger machinery: rows are applied to the table
    /// first, then every trigger registered for it fires with the inserted
    /// rows. A trigger error is reported to the caller (the insert itself
    /// is not rolled back — matching common DBMS AFTER-trigger semantics
    /// loosely, and documented for the benchmark's failed-data handling).
    pub fn insert_into(&self, table: &str, rows: Vec<Row>) -> StoreResult<usize> {
        let t = self.table(table)?;
        let fired_rows = rows.clone();
        let n = t.insert(rows)?;
        let triggers: Vec<Trigger> = self
            .triggers
            .read()
            .get(&table.to_lowercase())
            .cloned()
            .unwrap_or_default();
        for tr in triggers {
            (tr.body)(self, &fired_rows).map_err(|e| match e {
                // transport faults stay typed across the trigger boundary so
                // callers can still classify the failure as transient
                StoreError::Transport(t) => StoreError::Transport(t),
                e => StoreError::Procedure(format!("trigger {} failed: {e}", tr.name)),
            })?;
        }
        Ok(n)
    }

    /// Register an AFTER-INSERT trigger on `table`.
    pub fn create_trigger(
        &self,
        name: impl Into<String>,
        table: &str,
        body: Arc<TriggerFn>,
    ) -> StoreResult<()> {
        if !self.has_table(table) {
            return Err(StoreError::NoSuchTable(table.to_string()));
        }
        self.triggers
            .write()
            .entry(table.to_lowercase())
            .or_default()
            .push(Trigger {
                name: name.into(),
                body,
            });
        Ok(())
    }

    pub fn drop_triggers(&self, table: &str) {
        self.triggers.write().remove(&table.to_lowercase());
    }

    /// Register a stored procedure.
    pub fn create_procedure(&self, name: impl Into<String>, body: Arc<ProcFn>) {
        self.procs.write().insert(name.into().to_lowercase(), body);
    }

    /// Execute a stored procedure by name.
    pub fn call_procedure(&self, name: &str, args: &[Value]) -> StoreResult<Option<Relation>> {
        let p = self
            .procs
            .read()
            .get(&name.to_lowercase())
            .cloned()
            .ok_or_else(|| StoreError::NoSuchProcedure(name.to_string()))?;
        p(self, args)
    }

    pub fn has_procedure(&self, name: &str) -> bool {
        self.procs.read().contains_key(&name.to_lowercase())
    }

    /// Register a materialized view (storage table must already exist).
    pub fn create_view(&self, view: MatView) -> Arc<MatView> {
        let v = Arc::new(view);
        self.views.write().insert(v.name.to_lowercase(), v.clone());
        v
    }

    pub fn view(&self, name: &str) -> StoreResult<Arc<MatView>> {
        self.views
            .read()
            .get(&name.to_lowercase())
            .cloned()
            .ok_or_else(|| StoreError::NoSuchView(name.to_string()))
    }

    pub fn view_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.views.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Refresh a materialized view by name.
    pub fn refresh_view(&self, name: &str) -> StoreResult<usize> {
        let v = self.view(name)?;
        v.refresh(self)
    }

    /// Truncate every table (the benchmark's per-period uninitialization).
    pub fn truncate_all(&self) {
        for t in self.tables.read().values() {
            t.truncate();
        }
    }

    /// Total number of live rows over all tables — a cheap size probe used
    /// by verification and reports.
    pub fn total_rows(&self) -> usize {
        self.tables.read().values().map(|t| t.row_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelSchema;
    use crate::value::SqlType;

    fn db() -> Database {
        let db = Database::new("testdb");
        let schema = RelSchema::of(&[("id", SqlType::Int), ("v", SqlType::Str)]).shared();
        db.create_table(
            Table::new("src", schema.clone())
                .with_primary_key(&["id"])
                .unwrap(),
        );
        db.create_table(Table::new("dst", schema).with_primary_key(&["id"]).unwrap());
        db
    }

    #[test]
    fn trigger_copies_rows() {
        let db = db();
        db.create_trigger(
            "cp",
            "src",
            Arc::new(|db, rows| {
                db.table("dst")?.insert(rows.to_vec())?;
                Ok(())
            }),
        )
        .unwrap();
        db.insert_into("src", vec![vec![Value::Int(1), Value::str("a")]])
            .unwrap();
        assert_eq!(db.table("dst").unwrap().row_count(), 1);
    }

    #[test]
    fn trigger_error_is_reported() {
        let db = db();
        db.create_trigger(
            "boom",
            "src",
            Arc::new(|_, _| Err(StoreError::Procedure("nope".into()))),
        )
        .unwrap();
        let err = db
            .insert_into("src", vec![vec![Value::Int(1), Value::str("a")]])
            .unwrap_err();
        assert!(matches!(err, StoreError::Procedure(_)));
        // the base insert stuck (AFTER semantics)
        assert_eq!(db.table("src").unwrap().row_count(), 1);
    }

    #[test]
    fn procedures_roundtrip() {
        let db = db();
        db.create_procedure(
            "sp_count",
            Arc::new(|db, args| {
                let t = db.table(&args[0].render())?;
                let schema = RelSchema::of(&[("n", SqlType::Int)]).shared();
                Ok(Some(Relation::new(
                    schema,
                    vec![vec![Value::Int(t.row_count() as i64)]],
                )))
            }),
        );
        db.insert_into("src", vec![vec![Value::Int(1), Value::str("a")]])
            .unwrap();
        let rel = db
            .call_procedure("SP_COUNT", &[Value::str("src")])
            .unwrap()
            .unwrap();
        assert_eq!(rel.rows[0][0], Value::Int(1));
        assert!(db.call_procedure("nope", &[]).is_err());
    }

    #[test]
    fn truncate_all_and_total_rows() {
        let db = db();
        db.insert_into("src", vec![vec![Value::Int(1), Value::str("a")]])
            .unwrap();
        assert_eq!(db.total_rows(), 1);
        db.truncate_all();
        assert_eq!(db.total_rows(), 0);
    }

    #[test]
    fn table_lookup_case_insensitive() {
        let db = db();
        assert!(db.table("SRC").is_ok());
        assert!(db.table("missing").is_err());
        assert!(db.drop_table("src"));
        assert!(db.table("src").is_err());
    }
}
