//! # dip-trace — cross-layer span tracing and regression tracking
//!
//! The observability subsystem of the DIPBench reproduction (see
//! `docs/OBSERVABILITY.md`):
//!
//! * [`span`] — a low-overhead, dependency-free structured span/event
//!   collector. Instrumentation sites across every workspace layer
//!   (relstore's executor, xmlkit's STX transformer and parser, netsim's
//!   link transfers, the MTM interpreter's operator dispatch, feddbms
//!   trigger/procedure execution, the core client loop) open enter/exit
//!   guards keyed by `(layer, operator, process, period, instance)` and
//!   tagged with the paper's Cc/Cm/Cp cost categories. When tracing is
//!   disabled (the default) every site is a single relaxed atomic load —
//!   figure runs are unaffected.
//! * [`chrome`] — Chrome trace-event JSON export for single-run flame
//!   views in Perfetto / `chrome://tracing`.
//! * [`record`] — versioned machine-readable run records
//!   (`results/records/*.json`): commit, scale factors, engine, per-process
//!   NAVG/NAVG+ results, cost-category breakdown and span rollups.
//! * [`diff`] — comparison of two run records with a configurable noise
//!   threshold; the primitive behind `dipbench diff` and the CI
//!   regression gate.

pub mod chrome;
pub mod diff;
pub mod json;
pub mod record;
pub mod span;

pub use chrome::to_chrome_trace;
pub use diff::{diff, DiffOptions, DiffReport, Verdict};
pub use json::{Json, JsonError};
pub use record::{
    group_of, CellStats, ProcessStats, RunRecord, SpanRollup, MIN_SCHEMA_VERSION, SCHEMA_VERSION,
};
pub use span::{
    count, disable, drain, drain_counters, enable, instance_scope, is_enabled, record_modeled,
    span, span_cat, span_count, Category, CtxGuard, Layer, Span, SpanRecord,
};
