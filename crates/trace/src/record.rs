//! Versioned, machine-readable run records.
//!
//! A run record is the committed artifact of one benchmark run — the shape
//! rebar-style regression tracking needs: identity (commit, engine, scale
//! factors), the per-process NAVG/NAVG+ metric results, the cost-category
//! breakdown, and per-(layer, operator) span rollups. Records serialize to
//! pretty JSON under `results/records/` and are the inputs of
//! `dipbench diff`.

use crate::json::Json;
use crate::span::SpanRecord;
use std::collections::BTreeMap;

/// Bump when the record layout changes incompatibly; `parse` rejects
/// records from other majors so `diff` never compares apples to oranges.
pub const SCHEMA_VERSION: u64 = 1;

/// Per-process-type metric results, mirroring the monitor's aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessStats {
    pub process: String,
    pub instances: u64,
    pub failures: u64,
    pub navg_tu: f64,
    pub stddev_tu: f64,
    pub navg_plus_tu: f64,
    pub comm_tu: f64,
    pub mgmt_tu: f64,
    pub proc_tu: f64,
}

/// Aggregate of all spans sharing a (layer, operator) key.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRollup {
    pub layer: String,
    pub op: String,
    pub count: u64,
    pub total_us: f64,
}

/// One complete benchmark run, ready to serialize.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    pub schema_version: u64,
    /// Unix seconds the record was created (0 when unknown).
    pub created_unix: u64,
    /// Git commit the run was built from ("unknown" outside a checkout).
    pub commit: String,
    pub engine: String,
    /// Scale factors (d, t, f) and period count of the run.
    pub datasize: f64,
    pub time: f64,
    pub distribution: String,
    pub periods: u64,
    pub wall_ms: f64,
    pub processes: Vec<ProcessStats>,
    pub rollups: Vec<SpanRollup>,
    /// Named event counters (e.g. the executor's `relstore.rows_out.<op>`
    /// per-operator row counts), sorted by name. Absent in records written
    /// by older builds, so parsing tolerates the field missing.
    pub counters: Vec<(String, u64)>,
}

impl RunRecord {
    /// Aggregate raw spans into (layer, operator) rollups, sorted by key.
    pub fn rollup_spans(spans: &[SpanRecord]) -> Vec<SpanRollup> {
        let mut agg: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
        for s in spans {
            let e = agg
                .entry((s.layer.label().to_string(), s.op.to_string()))
                .or_insert((0, 0));
            e.0 += 1;
            e.1 += s.dur_ns;
        }
        agg.into_iter()
            .map(|((layer, op), (count, total_ns))| SpanRollup {
                layer,
                op,
                count,
                total_us: total_ns as f64 / 1000.0,
            })
            .collect()
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::num(self.schema_version as f64)),
            ("created_unix", Json::num(self.created_unix as f64)),
            ("commit", Json::str(self.commit.clone())),
            ("engine", Json::str(self.engine.clone())),
            (
                "scale",
                Json::obj(vec![
                    ("d", Json::num(self.datasize)),
                    ("t", Json::num(self.time)),
                    ("f", Json::str(self.distribution.clone())),
                ]),
            ),
            ("periods", Json::num(self.periods as f64)),
            ("wall_ms", Json::num(self.wall_ms)),
            (
                "processes",
                Json::Arr(
                    self.processes
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("process", Json::str(p.process.clone())),
                                ("instances", Json::num(p.instances as f64)),
                                ("failures", Json::num(p.failures as f64)),
                                ("navg_tu", Json::num(p.navg_tu)),
                                ("stddev_tu", Json::num(p.stddev_tu)),
                                ("navg_plus_tu", Json::num(p.navg_plus_tu)),
                                ("comm_tu", Json::num(p.comm_tu)),
                                ("mgmt_tu", Json::num(p.mgmt_tu)),
                                ("proc_tu", Json::num(p.proc_tu)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "span_rollups",
                Json::Arr(
                    self.rollups
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("layer", Json::str(r.layer.clone())),
                                ("op", Json::str(r.op.clone())),
                                ("count", Json::num(r.count as f64)),
                                ("total_us", Json::num(r.total_us)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "counters",
                Json::Arr(
                    self.counters
                        .iter()
                        .map(|(name, value)| {
                            Json::obj(vec![
                                ("name", Json::str(name.clone())),
                                ("value", Json::num(*value as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Pretty JSON, the on-disk format of `results/records/*.json`.
    pub fn render(&self) -> String {
        self.to_json().render_pretty()
    }

    pub fn from_json(v: &Json) -> Result<RunRecord, String> {
        let field = |key: &str| v.get(key).ok_or_else(|| format!("missing field '{key}'"));
        let schema_version = field("schema_version")?
            .as_u64()
            .ok_or("schema_version must be a non-negative integer")?;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported record schema version {schema_version} (this build reads {SCHEMA_VERSION})"
            ));
        }
        let scale = field("scale")?;
        let s_num = |obj: &Json, key: &str| {
            obj.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("scale.{key} must be a number"))
        };
        let mut processes = Vec::new();
        for p in field("processes")?
            .as_arr()
            .ok_or("processes must be an array")?
        {
            let pf = |key: &str| {
                p.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("process field '{key}' must be a number"))
            };
            processes.push(ProcessStats {
                process: p
                    .get("process")
                    .and_then(Json::as_str)
                    .ok_or("process field 'process' must be a string")?
                    .to_string(),
                instances: pf("instances")? as u64,
                failures: pf("failures")? as u64,
                navg_tu: pf("navg_tu")?,
                stddev_tu: pf("stddev_tu")?,
                navg_plus_tu: pf("navg_plus_tu")?,
                comm_tu: pf("comm_tu")?,
                mgmt_tu: pf("mgmt_tu")?,
                proc_tu: pf("proc_tu")?,
            });
        }
        let mut rollups = Vec::new();
        for r in field("span_rollups")?
            .as_arr()
            .ok_or("span_rollups must be an array")?
        {
            rollups.push(SpanRollup {
                layer: r
                    .get("layer")
                    .and_then(Json::as_str)
                    .ok_or("rollup field 'layer' must be a string")?
                    .to_string(),
                op: r
                    .get("op")
                    .and_then(Json::as_str)
                    .ok_or("rollup field 'op' must be a string")?
                    .to_string(),
                count: r
                    .get("count")
                    .and_then(Json::as_u64)
                    .ok_or("rollup field 'count' must be an integer")?,
                total_us: r
                    .get("total_us")
                    .and_then(Json::as_f64)
                    .ok_or("rollup field 'total_us' must be a number")?,
            });
        }
        let mut counters = Vec::new();
        if let Some(arr) = v.get("counters").and_then(Json::as_arr) {
            for c in arr {
                counters.push((
                    c.get("name")
                        .and_then(Json::as_str)
                        .ok_or("counter field 'name' must be a string")?
                        .to_string(),
                    c.get("value")
                        .and_then(Json::as_u64)
                        .ok_or("counter field 'value' must be an integer")?,
                ));
            }
        }
        Ok(RunRecord {
            schema_version,
            created_unix: field("created_unix")?.as_u64().unwrap_or(0),
            commit: field("commit")?
                .as_str()
                .ok_or("commit must be a string")?
                .to_string(),
            engine: field("engine")?
                .as_str()
                .ok_or("engine must be a string")?
                .to_string(),
            datasize: s_num(scale, "d")?,
            time: s_num(scale, "t")?,
            distribution: scale
                .get("f")
                .and_then(Json::as_str)
                .ok_or("scale.f must be a string")?
                .to_string(),
            periods: field("periods")?
                .as_u64()
                .ok_or("periods must be an integer")?,
            wall_ms: field("wall_ms")?
                .as_f64()
                .ok_or("wall_ms must be a number")?,
            processes,
            rollups,
            counters,
        })
    }

    /// Parse a record from its JSON text.
    pub fn parse(text: &str) -> Result<RunRecord, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        RunRecord::from_json(&v)
    }
}

#[cfg(test)]
pub(crate) fn sample_record() -> RunRecord {
    RunRecord {
        schema_version: SCHEMA_VERSION,
        created_unix: 1_700_000_000,
        commit: "abc1234".into(),
        engine: "federated-dbms".into(),
        datasize: 0.05,
        time: 1.0,
        distribution: "uniform".into(),
        periods: 3,
        wall_ms: 412.75,
        processes: vec![
            ProcessStats {
                process: "P01".into(),
                instances: 9,
                failures: 0,
                navg_tu: 1.25,
                stddev_tu: 0.5,
                navg_plus_tu: 1.75,
                comm_tu: 0.75,
                mgmt_tu: 0.05,
                proc_tu: 0.45,
            },
            ProcessStats {
                process: "P13".into(),
                instances: 3,
                failures: 1,
                navg_tu: 120.0,
                stddev_tu: 14.5,
                navg_plus_tu: 134.5,
                comm_tu: 80.0,
                mgmt_tu: 2.0,
                proc_tu: 38.0,
            },
        ],
        rollups: vec![SpanRollup {
            layer: "relstore".into(),
            op: "hash_join".into(),
            count: 42,
            total_us: 1234.5,
        }],
        counters: vec![
            ("relstore.rows_out.hash_join".into(), 1234),
            ("relstore.rows_out.scan".into(), 5678),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Category, Layer};

    #[test]
    fn record_roundtrips_exactly() {
        let rec = sample_record();
        let text = rec.render();
        let back = RunRecord::parse(&text).expect("parse back");
        assert_eq!(back, rec);
        // and a second serialize is byte-stable
        assert_eq!(back.render(), text);
    }

    #[test]
    fn rejects_other_schema_versions() {
        let mut rec = sample_record();
        rec.schema_version = SCHEMA_VERSION + 1;
        let err = RunRecord::parse(&rec.render()).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
    }

    #[test]
    fn rejects_missing_fields() {
        assert!(RunRecord::parse("{}").is_err());
        assert!(RunRecord::parse("not json").is_err());
    }

    #[test]
    fn rollup_aggregates_by_layer_and_op() {
        let span = |layer, op, dur_ns| SpanRecord {
            layer,
            op,
            category: Some(Category::Processing),
            process: None,
            period: None,
            instance: None,
            thread: 1,
            start_ns: 0,
            dur_ns,
        };
        let spans = vec![
            span(Layer::Relstore, "scan", 1_000),
            span(Layer::Relstore, "scan", 2_000),
            span(Layer::Xmlkit, "xml_parse", 5_000),
        ];
        let rollups = RunRecord::rollup_spans(&spans);
        assert_eq!(rollups.len(), 2);
        assert_eq!(rollups[0].layer, "relstore");
        assert_eq!(rollups[0].op, "scan");
        assert_eq!(rollups[0].count, 2);
        assert!((rollups[0].total_us - 3.0).abs() < 1e-9);
        assert_eq!(rollups[1].op, "xml_parse");
    }
}
