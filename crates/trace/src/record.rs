//! Versioned, machine-readable run records.
//!
//! A run record is the committed artifact of one benchmark run — the shape
//! rebar-style regression tracking needs: identity (commit, engine, scale
//! factors), the per-process NAVG/NAVG+ metric results, the cost-category
//! breakdown, and per-(layer, operator) span rollups. Records serialize to
//! pretty JSON under `results/records/` and are the inputs of
//! `dipbench diff`.

use crate::json::Json;
use crate::span::SpanRecord;
use std::collections::BTreeMap;

/// Bump when the record layout changes incompatibly; `parse` rejects
/// records from *newer* majors so `diff` never compares apples to oranges.
/// Older versions back to [`MIN_SCHEMA_VERSION`] still parse — v1 records
/// simply have no `cells` array (the barometer derives their cells from
/// the per-process stats instead).
pub const SCHEMA_VERSION: u64 = 2;

/// The oldest record layout this build still reads.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// The process group (A–D) a process type belongs to: A = master-data
/// integration (P01–P03), B = movement-data integration (P04–P11),
/// C = DWH update (P12–P13), D = data-mart update (P14–P15).
pub fn group_of(process: &str) -> char {
    match process
        .trim_start_matches(['P', 'p'])
        .parse::<u32>()
        .unwrap_or(0)
    {
        1..=3 => 'A',
        4..=11 => 'B',
        12..=13 => 'C',
        14..=15 => 'D',
        _ => '?',
    }
}

/// One addressable benchmark cell: the measurement of a
/// `(process-group, engine, d, t, f)` tuple in one run. The barometer's
/// unit of cross-engine and cross-commit comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CellStats {
    /// Process group A–D (see [`group_of`]).
    pub group: String,
    pub process: String,
    /// Engine tag (`fed`, `mtm`, `ivm`, …), duplicated from the record so
    /// a cell is self-addressing once extracted.
    pub engine: String,
    pub d: f64,
    pub t: f64,
    pub f: String,
    pub instances: u64,
    pub navg_plus_tu: f64,
    /// The run's row-insertion throughput, as context for the cell (the
    /// monitor does not attribute row counts to individual processes).
    pub rows_per_sec: f64,
}

/// Per-process-type metric results, mirroring the monitor's aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessStats {
    pub process: String,
    pub instances: u64,
    pub failures: u64,
    pub navg_tu: f64,
    pub stddev_tu: f64,
    pub navg_plus_tu: f64,
    pub comm_tu: f64,
    pub mgmt_tu: f64,
    pub proc_tu: f64,
}

/// Aggregate of all spans sharing a (layer, operator) key.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRollup {
    pub layer: String,
    pub op: String,
    pub count: u64,
    pub total_us: f64,
}

/// One complete benchmark run, ready to serialize.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    pub schema_version: u64,
    /// Unix seconds the record was created (0 when unknown).
    pub created_unix: u64,
    /// Git commit the run was built from ("unknown" outside a checkout).
    pub commit: String,
    pub engine: String,
    /// Executor mode the run used (`auto|streaming|vectorized|oracle`).
    /// Absent in records written before the mode existed; those parse as
    /// "streaming", the only execution path old builds had.
    pub exec_mode: String,
    /// Scale factors (d, t, f) and period count of the run.
    pub datasize: f64,
    pub time: f64,
    pub distribution: String,
    pub periods: u64,
    pub wall_ms: f64,
    pub processes: Vec<ProcessStats>,
    pub rollups: Vec<SpanRollup>,
    /// Named event counters (e.g. the executor's `relstore.rows_out.<op>`
    /// per-operator row counts), sorted by name. Absent in records written
    /// by older builds, so parsing tolerates the field missing.
    pub counters: Vec<(String, u64)>,
    /// The run's benchmark cells (schema v2). Empty for v1 records — use
    /// [`RunRecord::cells_or_derived`] to read either vintage uniformly.
    pub cells: Vec<CellStats>,
}

impl RunRecord {
    /// Aggregate raw spans into (layer, operator) rollups, sorted by key.
    pub fn rollup_spans(spans: &[SpanRecord]) -> Vec<SpanRollup> {
        let mut agg: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
        for s in spans {
            let e = agg
                .entry((s.layer.label().to_string(), s.op.to_string()))
                .or_insert((0, 0));
            e.0 += 1;
            e.1 += s.dur_ns;
        }
        agg.into_iter()
            .map(|((layer, op), (count, total_ns))| SpanRollup {
                layer,
                op,
                count,
                total_us: total_ns as f64 / 1000.0,
            })
            .collect()
    }

    /// Synthesize the cell list from the per-process stats and run-level
    /// throughput: the canonical cells for v2 records, and the derived view
    /// the barometer uses to read v1 records that predate the cell model.
    pub fn derive_cells(&self, rows_per_sec: f64) -> Vec<CellStats> {
        self.processes
            .iter()
            .map(|p| CellStats {
                group: group_of(&p.process).to_string(),
                process: p.process.clone(),
                engine: self.engine.clone(),
                d: self.datasize,
                t: self.time,
                f: self.distribution.clone(),
                instances: p.instances,
                navg_plus_tu: p.navg_plus_tu,
                rows_per_sec,
            })
            .collect()
    }

    /// The record's cells, deriving them on the fly for v1 records (which
    /// carry no run-level throughput, so derived cells report 0 rows/sec).
    pub fn cells_or_derived(&self) -> Vec<CellStats> {
        if self.cells.is_empty() {
            self.derive_cells(0.0)
        } else {
            self.cells.clone()
        }
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::num(self.schema_version as f64)),
            ("created_unix", Json::num(self.created_unix as f64)),
            ("commit", Json::str(self.commit.clone())),
            ("engine", Json::str(self.engine.clone())),
            ("exec_mode", Json::str(self.exec_mode.clone())),
            (
                "scale",
                Json::obj(vec![
                    ("d", Json::num(self.datasize)),
                    ("t", Json::num(self.time)),
                    ("f", Json::str(self.distribution.clone())),
                ]),
            ),
            ("periods", Json::num(self.periods as f64)),
            ("wall_ms", Json::num(self.wall_ms)),
            (
                "processes",
                Json::Arr(
                    self.processes
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("process", Json::str(p.process.clone())),
                                ("instances", Json::num(p.instances as f64)),
                                ("failures", Json::num(p.failures as f64)),
                                ("navg_tu", Json::num(p.navg_tu)),
                                ("stddev_tu", Json::num(p.stddev_tu)),
                                ("navg_plus_tu", Json::num(p.navg_plus_tu)),
                                ("comm_tu", Json::num(p.comm_tu)),
                                ("mgmt_tu", Json::num(p.mgmt_tu)),
                                ("proc_tu", Json::num(p.proc_tu)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "span_rollups",
                Json::Arr(
                    self.rollups
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("layer", Json::str(r.layer.clone())),
                                ("op", Json::str(r.op.clone())),
                                ("count", Json::num(r.count as f64)),
                                ("total_us", Json::num(r.total_us)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "counters",
                Json::Arr(
                    self.counters
                        .iter()
                        .map(|(name, value)| {
                            Json::obj(vec![
                                ("name", Json::str(name.clone())),
                                ("value", Json::num(*value as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "cells",
                Json::Arr(
                    self.cells
                        .iter()
                        .map(|c| {
                            Json::obj(vec![
                                ("group", Json::str(c.group.clone())),
                                ("process", Json::str(c.process.clone())),
                                ("engine", Json::str(c.engine.clone())),
                                ("d", Json::num(c.d)),
                                ("t", Json::num(c.t)),
                                ("f", Json::str(c.f.clone())),
                                ("instances", Json::num(c.instances as f64)),
                                ("navg_plus_tu", Json::num(c.navg_plus_tu)),
                                ("rows_per_sec", Json::num(c.rows_per_sec)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Pretty JSON, the on-disk format of `results/records/*.json`.
    pub fn render(&self) -> String {
        self.to_json().render_pretty()
    }

    pub fn from_json(v: &Json) -> Result<RunRecord, String> {
        let field = |key: &str| v.get(key).ok_or_else(|| format!("missing field '{key}'"));
        let schema_version = field("schema_version")?
            .as_u64()
            .ok_or("schema_version must be a non-negative integer")?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&schema_version) {
            return Err(format!(
                "unsupported record schema version {schema_version} (this build reads {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})"
            ));
        }
        let scale = field("scale")?;
        let s_num = |obj: &Json, key: &str| {
            obj.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("scale.{key} must be a number"))
        };
        let mut processes = Vec::new();
        for p in field("processes")?
            .as_arr()
            .ok_or("processes must be an array")?
        {
            let pf = |key: &str| {
                p.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("process field '{key}' must be a number"))
            };
            processes.push(ProcessStats {
                process: p
                    .get("process")
                    .and_then(Json::as_str)
                    .ok_or("process field 'process' must be a string")?
                    .to_string(),
                instances: pf("instances")? as u64,
                failures: pf("failures")? as u64,
                navg_tu: pf("navg_tu")?,
                stddev_tu: pf("stddev_tu")?,
                navg_plus_tu: pf("navg_plus_tu")?,
                comm_tu: pf("comm_tu")?,
                mgmt_tu: pf("mgmt_tu")?,
                proc_tu: pf("proc_tu")?,
            });
        }
        let mut rollups = Vec::new();
        for r in field("span_rollups")?
            .as_arr()
            .ok_or("span_rollups must be an array")?
        {
            rollups.push(SpanRollup {
                layer: r
                    .get("layer")
                    .and_then(Json::as_str)
                    .ok_or("rollup field 'layer' must be a string")?
                    .to_string(),
                op: r
                    .get("op")
                    .and_then(Json::as_str)
                    .ok_or("rollup field 'op' must be a string")?
                    .to_string(),
                count: r
                    .get("count")
                    .and_then(Json::as_u64)
                    .ok_or("rollup field 'count' must be an integer")?,
                total_us: r
                    .get("total_us")
                    .and_then(Json::as_f64)
                    .ok_or("rollup field 'total_us' must be a number")?,
            });
        }
        let mut counters = Vec::new();
        if let Some(arr) = v.get("counters").and_then(Json::as_arr) {
            for c in arr {
                counters.push((
                    c.get("name")
                        .and_then(Json::as_str)
                        .ok_or("counter field 'name' must be a string")?
                        .to_string(),
                    c.get("value")
                        .and_then(Json::as_u64)
                        .ok_or("counter field 'value' must be an integer")?,
                ));
            }
        }
        let mut cells = Vec::new();
        if let Some(arr) = v.get("cells").and_then(Json::as_arr) {
            for c in arr {
                let cs = |key: &str| {
                    c.get(key)
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("cell field '{key}' must be a string"))
                        .map(str::to_string)
                };
                let cn = |key: &str| {
                    c.get(key)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("cell field '{key}' must be a number"))
                };
                cells.push(CellStats {
                    group: cs("group")?,
                    process: cs("process")?,
                    engine: cs("engine")?,
                    d: cn("d")?,
                    t: cn("t")?,
                    f: cs("f")?,
                    instances: cn("instances")? as u64,
                    navg_plus_tu: cn("navg_plus_tu")?,
                    rows_per_sec: cn("rows_per_sec")?,
                });
            }
        }
        Ok(RunRecord {
            schema_version,
            created_unix: field("created_unix")?.as_u64().unwrap_or(0),
            commit: field("commit")?
                .as_str()
                .ok_or("commit must be a string")?
                .to_string(),
            engine: field("engine")?
                .as_str()
                .ok_or("engine must be a string")?
                .to_string(),
            exec_mode: v
                .get("exec_mode")
                .and_then(Json::as_str)
                .unwrap_or("streaming")
                .to_string(),
            datasize: s_num(scale, "d")?,
            time: s_num(scale, "t")?,
            distribution: scale
                .get("f")
                .and_then(Json::as_str)
                .ok_or("scale.f must be a string")?
                .to_string(),
            periods: field("periods")?
                .as_u64()
                .ok_or("periods must be an integer")?,
            wall_ms: field("wall_ms")?
                .as_f64()
                .ok_or("wall_ms must be a number")?,
            processes,
            rollups,
            counters,
            cells,
        })
    }

    /// Parse a record from its JSON text.
    pub fn parse(text: &str) -> Result<RunRecord, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        RunRecord::from_json(&v)
    }
}

#[cfg(test)]
pub(crate) fn sample_record() -> RunRecord {
    RunRecord {
        schema_version: SCHEMA_VERSION,
        created_unix: 1_700_000_000,
        commit: "abc1234".into(),
        engine: "federated-dbms".into(),
        exec_mode: "streaming".into(),
        datasize: 0.05,
        time: 1.0,
        distribution: "uniform".into(),
        periods: 3,
        wall_ms: 412.75,
        processes: vec![
            ProcessStats {
                process: "P01".into(),
                instances: 9,
                failures: 0,
                navg_tu: 1.25,
                stddev_tu: 0.5,
                navg_plus_tu: 1.75,
                comm_tu: 0.75,
                mgmt_tu: 0.05,
                proc_tu: 0.45,
            },
            ProcessStats {
                process: "P13".into(),
                instances: 3,
                failures: 1,
                navg_tu: 120.0,
                stddev_tu: 14.5,
                navg_plus_tu: 134.5,
                comm_tu: 80.0,
                mgmt_tu: 2.0,
                proc_tu: 38.0,
            },
        ],
        rollups: vec![SpanRollup {
            layer: "relstore".into(),
            op: "hash_join".into(),
            count: 42,
            total_us: 1234.5,
        }],
        counters: vec![
            ("relstore.rows_out.hash_join".into(), 1234),
            ("relstore.rows_out.scan".into(), 5678),
        ],
        cells: vec![CellStats {
            group: "C".into(),
            process: "P13".into(),
            engine: "federated-dbms".into(),
            d: 0.05,
            t: 1.0,
            f: "uniform".into(),
            instances: 3,
            navg_plus_tu: 134.5,
            rows_per_sec: 9000.0,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Category, Layer};

    #[test]
    fn record_roundtrips_exactly() {
        let rec = sample_record();
        let text = rec.render();
        let back = RunRecord::parse(&text).expect("parse back");
        assert_eq!(back, rec);
        // and a second serialize is byte-stable
        assert_eq!(back.render(), text);
    }

    #[test]
    fn rejects_other_schema_versions() {
        let mut rec = sample_record();
        rec.schema_version = SCHEMA_VERSION + 1;
        let err = RunRecord::parse(&rec.render()).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
    }

    #[test]
    fn v1_records_without_cells_still_parse() {
        // the committed baseline records are v1: no `cells` array
        let mut rec = sample_record();
        rec.schema_version = 1;
        rec.cells.clear();
        rec.counters.clear();
        let back = RunRecord::parse(&rec.render()).expect("v1 parses");
        assert_eq!(back.schema_version, 1);
        assert!(back.cells.is_empty());
        // ...and the derived view covers every process
        let derived = back.cells_or_derived();
        assert_eq!(derived.len(), back.processes.len());
        assert_eq!(derived[0].group, "A");
        assert_eq!(derived[1].group, "C");
        assert_eq!(derived[1].navg_plus_tu, 134.5);
    }

    #[test]
    fn records_without_exec_mode_default_to_streaming() {
        // records written before the executor-mode dimension existed carry
        // no `exec_mode` field; they ran the only path old builds had
        let rec = sample_record();
        let text = rec.render();
        let stripped: Vec<String> = text
            .lines()
            .filter(|l| !l.contains("\"exec_mode\""))
            .map(str::to_string)
            .collect();
        let back = RunRecord::parse(&stripped.join("\n")).expect("parses without exec_mode");
        assert_eq!(back.exec_mode, "streaming");
        // and an explicit mode round-trips
        let mut rec = sample_record();
        rec.exec_mode = "vectorized".into();
        let back = RunRecord::parse(&rec.render()).expect("parse back");
        assert_eq!(back.exec_mode, "vectorized");
    }

    #[test]
    fn groups_follow_the_paper_partition() {
        assert_eq!(group_of("P01"), 'A');
        assert_eq!(group_of("P03"), 'A');
        assert_eq!(group_of("P04"), 'B');
        assert_eq!(group_of("P11"), 'B');
        assert_eq!(group_of("P12"), 'C');
        assert_eq!(group_of("P13"), 'C');
        assert_eq!(group_of("P14"), 'D');
        assert_eq!(group_of("P15"), 'D');
        assert_eq!(group_of("P99"), '?');
        assert_eq!(group_of("bogus"), '?');
    }

    #[test]
    fn rejects_missing_fields() {
        assert!(RunRecord::parse("{}").is_err());
        assert!(RunRecord::parse("not json").is_err());
    }

    #[test]
    fn rollup_aggregates_by_layer_and_op() {
        let span = |layer, op, dur_ns| SpanRecord {
            layer,
            op,
            category: Some(Category::Processing),
            process: None,
            period: None,
            instance: None,
            thread: 1,
            start_ns: 0,
            dur_ns,
        };
        let spans = vec![
            span(Layer::Relstore, "scan", 1_000),
            span(Layer::Relstore, "scan", 2_000),
            span(Layer::Xmlkit, "xml_parse", 5_000),
        ];
        let rollups = RunRecord::rollup_spans(&spans);
        assert_eq!(rollups.len(), 2);
        assert_eq!(rollups[0].layer, "relstore");
        assert_eq!(rollups[0].op, "scan");
        assert_eq!(rollups[0].count, 2);
        assert!((rollups[0].total_us - 3.0).abs() < 1e-9);
        assert_eq!(rollups[1].op, "xml_parse");
    }
}
