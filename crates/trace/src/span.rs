//! The span collector: a process-global, thread-safe sink for structured
//! trace spans and counters.
//!
//! Design constraints (see docs/OBSERVABILITY.md):
//!
//! * **Zero cost when disabled.** Every instrumentation site first performs
//!   one `Relaxed` atomic load; when tracing is off (the default) no clock
//!   is read, nothing allocates and nothing locks. Benchmark figure runs
//!   are therefore unaffected by the instrumentation being compiled in.
//! * **Cross-layer keying.** A span carries its [`Layer`] and operator name
//!   plus the benchmark identity of the work it belongs to — process type,
//!   period and instance id — taken from a thread-local instance scope the
//!   integration engines establish via [`instance_scope`].
//! * **Cost categories first-class.** The paper's Cc/Cm/Cp categories are
//!   span attributes, so exports can be rolled up per category exactly like
//!   the monitor's cost records.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// The workspace layer a span originates from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Layer {
    /// The benchmark core: client, schedule, environment.
    Core,
    /// The in-memory relational engine.
    Relstore,
    /// The XML stack (parser, STX transformer, XSD validator).
    Xmlkit,
    /// The simulated network.
    Netsim,
    /// Web services and message-emitting applications.
    Services,
    /// The native MTM interpreter.
    Mtm,
    /// The federated-DBMS reference implementation.
    Feddbms,
}

impl Layer {
    pub fn label(self) -> &'static str {
        match self {
            Layer::Core => "core",
            Layer::Relstore => "relstore",
            Layer::Xmlkit => "xmlkit",
            Layer::Netsim => "netsim",
            Layer::Services => "services",
            Layer::Mtm => "mtm",
            Layer::Feddbms => "feddbms",
        }
    }

    pub fn parse(s: &str) -> Option<Layer> {
        match s {
            "core" => Some(Layer::Core),
            "relstore" => Some(Layer::Relstore),
            "xmlkit" => Some(Layer::Xmlkit),
            "netsim" => Some(Layer::Netsim),
            "services" => Some(Layer::Services),
            "mtm" => Some(Layer::Mtm),
            "feddbms" => Some(Layer::Feddbms),
            _ => None,
        }
    }
}

/// The benchmark's three cost categories (paper §V), as span attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Cc — waiting for external systems.
    Communication,
    /// Cm — internal management not tied to instance data flow.
    Management,
    /// Cp — control-flow and data-flow processing.
    Processing,
}

impl Category {
    pub fn label(self) -> &'static str {
        match self {
            Category::Communication => "Cc",
            Category::Management => "Cm",
            Category::Processing => "Cp",
        }
    }

    pub fn parse(s: &str) -> Option<Category> {
        match s {
            "Cc" => Some(Category::Communication),
            "Cm" => Some(Category::Management),
            "Cp" => Some(Category::Processing),
            _ => None,
        }
    }
}

/// One finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    pub layer: Layer,
    /// Operator name, e.g. `"hash_join"` or `"stx_transform"`.
    pub op: &'static str,
    /// Cost category this work is charged to, when the site knows it.
    pub category: Option<Category>,
    /// Benchmark identity from the enclosing [`instance_scope`], if any.
    pub process: Option<String>,
    pub period: Option<u32>,
    pub instance: Option<u64>,
    /// Small sequential id of the recording thread.
    pub thread: u64,
    /// Start offset on the collector's epoch, nanoseconds.
    pub start_ns: u64,
    pub dur_ns: u64,
}

#[derive(Clone)]
struct InstanceCtx {
    process: String,
    period: u32,
    instance: u64,
}

struct Collector {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    counters: Mutex<HashMap<&'static str, u64>>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static COLLECTOR: OnceLock<Collector> = OnceLock::new();
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    static CTX: RefCell<Vec<InstanceCtx>> = const { RefCell::new(Vec::new()) };
}

fn collector() -> &'static Collector {
    COLLECTOR.get_or_init(|| Collector {
        epoch: Instant::now(),
        spans: Mutex::new(Vec::new()),
        counters: Mutex::new(HashMap::new()),
    })
}

/// Turn the collector on. Spans recorded from this point on are kept until
/// [`drain`]. (The epoch is fixed at first use, so spans from multiple
/// enable/disable windows share one time base.)
pub fn enable() {
    collector();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn the collector off; instrumentation sites return to no-ops.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether spans are currently being collected.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Take all collected spans, leaving the collector empty.
pub fn drain() -> Vec<SpanRecord> {
    match COLLECTOR.get() {
        Some(c) => std::mem::take(&mut *c.spans.lock().unwrap()),
        None => Vec::new(),
    }
}

/// Take all counters, sorted by name.
pub fn drain_counters() -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = match COLLECTOR.get() {
        Some(c) => std::mem::take(&mut *c.counters.lock().unwrap())
            .into_iter()
            .map(|(k, n)| (k.to_string(), n))
            .collect(),
        None => Vec::new(),
    };
    v.sort();
    v
}

/// Number of spans currently buffered (diagnostic).
pub fn span_count() -> usize {
    COLLECTOR.get().map_or(0, |c| c.spans.lock().unwrap().len())
}

/// Add `delta` to a named counter. No-op while disabled.
#[inline]
pub fn count(name: &'static str, delta: u64) {
    if !is_enabled() {
        return;
    }
    *collector()
        .counters
        .lock()
        .unwrap()
        .entry(name)
        .or_insert(0) += delta;
}

/// Establish the benchmark identity of the work running on this thread;
/// spans recorded until the guard drops inherit it. Scopes nest (e.g. a
/// subprocess instance inside its parent).
pub fn instance_scope(process: &str, period: u32, instance: u64) -> CtxGuard {
    if !is_enabled() {
        return CtxGuard { pushed: false };
    }
    CTX.with(|c| {
        c.borrow_mut().push(InstanceCtx {
            process: process.to_string(),
            period,
            instance,
        })
    });
    CtxGuard { pushed: true }
}

/// Guard returned by [`instance_scope`]; pops the context on drop.
pub struct CtxGuard {
    pushed: bool,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        if self.pushed {
            CTX.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }
}

struct ActiveSpan {
    layer: Layer,
    op: &'static str,
    category: Option<Category>,
    start: Instant,
}

/// An enter/exit span guard: created at the top of an instrumented block,
/// records the elapsed time when dropped. Inactive (and free apart from the
/// enabled check) while tracing is disabled.
pub struct Span {
    active: Option<ActiveSpan>,
}

/// Open a span without a cost category.
#[inline]
pub fn span(layer: Layer, op: &'static str) -> Span {
    span_inner(layer, op, None)
}

/// Open a span charged to a cost category.
#[inline]
pub fn span_cat(layer: Layer, op: &'static str, category: Category) -> Span {
    span_inner(layer, op, Some(category))
}

#[inline]
fn span_inner(layer: Layer, op: &'static str, category: Option<Category>) -> Span {
    if !is_enabled() {
        return Span { active: None };
    }
    Span {
        active: Some(ActiveSpan {
            layer,
            op,
            category,
            start: Instant::now(),
        }),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(s) = self.active.take() {
            let dur = s.start.elapsed();
            push_record(s.layer, s.op, s.category, s.start, dur);
        }
    }
}

/// Record a span whose duration is a *modeled* quantity rather than wall
/// time — e.g. netsim's accounted (not slept) transfer delay.
pub fn record_modeled(layer: Layer, op: &'static str, category: Option<Category>, dur: Duration) {
    if !is_enabled() {
        return;
    }
    push_record(layer, op, category, Instant::now(), dur);
}

fn push_record(
    layer: Layer,
    op: &'static str,
    category: Option<Category>,
    start: Instant,
    dur: Duration,
) {
    let c = collector();
    let (process, period, instance) = CTX.with(|ctx| {
        ctx.borrow().last().map_or((None, None, None), |i| {
            (Some(i.process.clone()), Some(i.period), Some(i.instance))
        })
    });
    let rec = SpanRecord {
        layer,
        op,
        category,
        process,
        period,
        instance,
        thread: THREAD_ID.with(|t| *t),
        start_ns: start.saturating_duration_since(c.epoch).as_nanos() as u64,
        dur_ns: dur.as_nanos() as u64,
    };
    c.spans.lock().unwrap().push(rec);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is process-global, so the unit tests here run the whole
    // lifecycle inside one test to avoid cross-test interference.
    #[test]
    fn lifecycle_enable_record_drain_disable() {
        drain();
        drain_counters();

        // disabled: nothing recorded
        assert!(!is_enabled());
        {
            let _s = span(Layer::Relstore, "scan");
            count("rows", 10);
            let _g = instance_scope("P01", 0, 1);
            let _t = span_cat(Layer::Mtm, "translate", Category::Processing);
        }
        assert_eq!(span_count(), 0);
        assert!(drain().is_empty());
        assert!(drain_counters().is_empty());

        // enabled: spans carry context, category and thread id
        enable();
        {
            let _g = instance_scope("P04", 2, 7);
            let _s = span_cat(Layer::Xmlkit, "stx_transform", Category::Processing);
            count("net.bytes", 42);
            count("net.bytes", 8);
        }
        record_modeled(
            Layer::Netsim,
            "transfer",
            Some(Category::Communication),
            Duration::from_micros(1500),
        );
        disable();
        let spans = drain();
        assert_eq!(spans.len(), 2);
        let stx = &spans[0];
        assert_eq!(stx.layer, Layer::Xmlkit);
        assert_eq!(stx.op, "stx_transform");
        assert_eq!(stx.category, Some(Category::Processing));
        assert_eq!(stx.process.as_deref(), Some("P04"));
        assert_eq!(stx.period, Some(2));
        assert_eq!(stx.instance, Some(7));
        assert!(stx.thread > 0);
        let net = &spans[1];
        assert_eq!(net.dur_ns, 1_500_000);
        assert_eq!(net.process, None, "modeled span outside any scope");
        assert_eq!(drain_counters(), vec![("net.bytes".to_string(), 50)]);

        // disabled again: back to no-op
        let _s = span(Layer::Core, "period");
        drop(_s);
        assert!(drain().is_empty());
    }

    #[test]
    fn labels_roundtrip() {
        for l in [
            Layer::Core,
            Layer::Relstore,
            Layer::Xmlkit,
            Layer::Netsim,
            Layer::Services,
            Layer::Mtm,
            Layer::Feddbms,
        ] {
            assert_eq!(Layer::parse(l.label()), Some(l));
        }
        for c in [
            Category::Communication,
            Category::Management,
            Category::Processing,
        ] {
            assert_eq!(Category::parse(c.label()), Some(c));
        }
        assert_eq!(Layer::parse("nope"), None);
        assert_eq!(Category::parse("Cx"), None);
    }
}
