//! Chrome trace-event exporter.
//!
//! Renders collected spans in the Trace Event Format's "complete event"
//! (`"ph": "X"`) flavor, loadable in Perfetto (<https://ui.perfetto.dev>)
//! or `chrome://tracing` for a single-run flame view. Each workspace layer
//! becomes a process row and each recording thread a track, so the
//! cross-layer structure of one benchmark period is visible at a glance.

use crate::json::Json;
use crate::span::SpanRecord;

/// Render spans as a Trace Event Format JSON document.
pub fn to_chrome_trace(spans: &[SpanRecord]) -> String {
    let mut events: Vec<Json> = Vec::with_capacity(spans.len() + 16);
    // Name the per-layer "process" rows.
    let mut layers: Vec<_> = spans.iter().map(|s| s.layer).collect();
    layers.sort();
    layers.dedup();
    for layer in &layers {
        events.push(Json::obj(vec![
            ("name", Json::str("process_name")),
            ("ph", Json::str("M")),
            ("pid", Json::num((*layer as u8 + 1) as f64)),
            ("tid", Json::num(0.0)),
            ("args", Json::obj(vec![("name", Json::str(layer.label()))])),
        ]));
    }
    for s in spans {
        let mut args = Vec::new();
        if let Some(p) = &s.process {
            args.push(("process".to_string(), Json::str(p.clone())));
        }
        if let Some(k) = s.period {
            args.push(("period".to_string(), Json::num(k as f64)));
        }
        if let Some(i) = s.instance {
            args.push(("instance".to_string(), Json::num(i as f64)));
        }
        let cat = match s.category {
            Some(c) => format!("{},{}", s.layer.label(), c.label()),
            None => s.layer.label().to_string(),
        };
        events.push(Json::obj(vec![
            ("name", Json::str(s.op)),
            ("cat", Json::str(cat)),
            ("ph", Json::str("X")),
            ("ts", Json::num(s.start_ns as f64 / 1000.0)),
            ("dur", Json::num(s.dur_ns as f64 / 1000.0)),
            ("pid", Json::num((s.layer as u8 + 1) as f64)),
            ("tid", Json::num(s.thread as f64)),
            ("args", Json::Obj(args)),
        ]));
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ms")),
    ])
    .render_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Category, Layer};

    fn rec(layer: Layer, op: &'static str, start_us: u64, dur_us: u64) -> SpanRecord {
        SpanRecord {
            layer,
            op,
            category: Some(Category::Processing),
            process: Some("P04".into()),
            period: Some(0),
            instance: Some(3),
            thread: 1,
            start_ns: start_us * 1000,
            dur_ns: dur_us * 1000,
        }
    }

    #[test]
    fn export_is_valid_json_with_expected_events() {
        let spans = vec![
            rec(Layer::Relstore, "hash_join", 10, 5),
            rec(Layer::Xmlkit, "stx_transform", 20, 7),
        ];
        let text = to_chrome_trace(&spans);
        let doc = Json::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        // 2 layer-name metadata events + 2 spans
        assert_eq!(events.len(), 4);
        let span_ev = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("hash_join"))
            .unwrap();
        assert_eq!(span_ev.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(span_ev.get("ts").and_then(Json::as_f64), Some(10.0));
        assert_eq!(span_ev.get("dur").and_then(Json::as_f64), Some(5.0));
        assert_eq!(
            span_ev.get("cat").and_then(Json::as_str),
            Some("relstore,Cp")
        );
        assert_eq!(
            span_ev
                .get("args")
                .unwrap()
                .get("process")
                .and_then(Json::as_str),
            Some("P04")
        );
    }
}
