//! Regression comparison of two run records.
//!
//! `diff(baseline, candidate)` compares the per-process `NAVG+` of two
//! records with a configurable noise threshold and ranks the result — the
//! CI-gateable primitive: a candidate that regresses any process type
//! beyond the threshold makes `dipbench diff` exit non-zero.

use crate::record::RunRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Noise thresholds for calling a change real.
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Relative change in `NAVG+` (candidate vs baseline) below which a
    /// process is "unchanged". 0.15 = ±15 %.
    pub threshold: f64,
    /// Absolute floor in tu: changes smaller than this are never flagged,
    /// however large relatively (guards the near-zero lightweight types).
    pub min_delta_tu: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            threshold: 0.15,
            min_delta_tu: 0.05,
        }
    }
}

/// Verdict for one process type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    Regression,
    Improvement,
    Unchanged,
    /// Present only in the candidate.
    Added,
    /// Present only in the baseline.
    Removed,
}

impl Verdict {
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Regression => "REGRESSION",
            Verdict::Improvement => "improvement",
            Verdict::Unchanged => "~",
            Verdict::Added => "added",
            Verdict::Removed => "removed",
        }
    }
}

/// One row of the comparison.
#[derive(Debug, Clone)]
pub struct ProcessDiff {
    pub process: String,
    pub baseline_tu: Option<f64>,
    pub candidate_tu: Option<f64>,
    /// Relative change in percent ((cand − base) / base × 100); 0 when
    /// either side is missing.
    pub delta_pct: f64,
    pub verdict: Verdict,
}

/// The full comparison of two records.
#[derive(Debug, Clone)]
pub struct DiffReport {
    pub options: DiffOptions,
    pub baseline_label: String,
    pub candidate_label: String,
    /// Rows ranked worst-regression first, best-improvement last.
    pub rows: Vec<ProcessDiff>,
    /// Set when the two records were produced under different scale
    /// factors or engines — the comparison is then apples-to-oranges.
    pub config_warnings: Vec<String>,
}

impl DiffReport {
    pub fn regressions(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.verdict == Verdict::Regression)
            .count()
    }

    pub fn improvements(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.verdict == Verdict::Improvement)
            .count()
    }

    pub fn has_regressions(&self) -> bool {
        self.regressions() > 0
    }

    /// Render the ranked comparison table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# dipbench diff — baseline {} vs candidate {} (threshold ±{:.0} %, floor {} tu)",
            self.baseline_label,
            self.candidate_label,
            self.options.threshold * 100.0,
            self.options.min_delta_tu
        );
        for w in &self.config_warnings {
            let _ = writeln!(out, "warning: {w}");
        }
        let _ = writeln!(
            out,
            "{:<6} {:>14} {:>14} {:>9}  verdict",
            "proc", "base NAVG+[tu]", "cand NAVG+[tu]", "delta"
        );
        let fmt_opt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.2}"),
            None => "-".to_string(),
        };
        for r in &self.rows {
            let delta = if r.baseline_tu.is_some() && r.candidate_tu.is_some() {
                format!("{:>+8.1}%", r.delta_pct)
            } else {
                format!("{:>9}", "-")
            };
            let _ = writeln!(
                out,
                "{:<6} {:>14} {:>14} {}  {}",
                r.process,
                fmt_opt(r.baseline_tu),
                fmt_opt(r.candidate_tu),
                delta,
                r.verdict.label()
            );
        }
        let _ = writeln!(
            out,
            "\n{} regression(s), {} improvement(s), {} process type(s) compared",
            self.regressions(),
            self.improvements(),
            self.rows.len()
        );
        out
    }
}

/// Compare `candidate` against `baseline`.
pub fn diff(baseline: &RunRecord, candidate: &RunRecord, options: DiffOptions) -> DiffReport {
    let mut config_warnings = Vec::new();
    if baseline.engine != candidate.engine {
        config_warnings.push(format!(
            "engines differ: {} vs {}",
            baseline.engine, candidate.engine
        ));
    }
    if (baseline.datasize - candidate.datasize).abs() > 1e-12
        || (baseline.time - candidate.time).abs() > 1e-12
        || baseline.distribution != candidate.distribution
    {
        config_warnings.push(format!(
            "scale factors differ: (d={}, t={}, f={}) vs (d={}, t={}, f={})",
            baseline.datasize,
            baseline.time,
            baseline.distribution,
            candidate.datasize,
            candidate.time,
            candidate.distribution
        ));
    }
    if baseline.periods != candidate.periods {
        config_warnings.push(format!(
            "period counts differ: {} vs {}",
            baseline.periods, candidate.periods
        ));
    }

    let mut processes: BTreeMap<&str, (Option<f64>, Option<f64>)> = BTreeMap::new();
    for p in &baseline.processes {
        processes.entry(&p.process).or_default().0 = Some(p.navg_plus_tu);
    }
    for p in &candidate.processes {
        processes.entry(&p.process).or_default().1 = Some(p.navg_plus_tu);
    }
    let mut rows: Vec<ProcessDiff> = processes
        .into_iter()
        .map(|(process, (base, cand))| {
            let (delta_pct, verdict) = match (base, cand) {
                (Some(b), Some(c)) => {
                    let delta = c - b;
                    let rel = if b.abs() > 1e-12 { delta / b } else { 0.0 };
                    let verdict =
                        if delta.abs() <= options.min_delta_tu || rel.abs() <= options.threshold {
                            Verdict::Unchanged
                        } else if delta > 0.0 {
                            Verdict::Regression
                        } else {
                            Verdict::Improvement
                        };
                    (rel * 100.0, verdict)
                }
                (None, Some(_)) => (0.0, Verdict::Added),
                (Some(_), None) => (0.0, Verdict::Removed),
                (None, None) => unreachable!("process came from one of the records"),
            };
            ProcessDiff {
                process: process.to_string(),
                baseline_tu: base,
                candidate_tu: cand,
                delta_pct,
                verdict,
            }
        })
        .collect();
    // Rank: regressions first by severity, then added/removed, then
    // unchanged, improvements last (best last).
    let rank = |v: Verdict| match v {
        Verdict::Regression => 0,
        Verdict::Added => 1,
        Verdict::Removed => 1,
        Verdict::Unchanged => 2,
        Verdict::Improvement => 3,
    };
    rows.sort_by(|a, b| {
        rank(a.verdict)
            .cmp(&rank(b.verdict))
            .then(
                b.delta_pct
                    .partial_cmp(&a.delta_pct)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(a.process.cmp(&b.process))
    });
    DiffReport {
        options,
        baseline_label: baseline.commit.clone(),
        candidate_label: candidate.commit.clone(),
        rows,
        config_warnings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::sample_record;

    #[test]
    fn self_diff_reports_zero_regressions() {
        let rec = sample_record();
        let report = diff(&rec, &rec, DiffOptions::default());
        assert_eq!(report.regressions(), 0);
        assert_eq!(report.improvements(), 0);
        assert!(report.config_warnings.is_empty());
        assert!(report.rows.iter().all(|r| r.verdict == Verdict::Unchanged));
        assert!(report.render().contains("0 regression(s)"));
    }

    #[test]
    fn regressions_rank_first_and_flag() {
        let base = sample_record();
        let mut cand = sample_record();
        // P13: 134.5 → 200 tu (+48 %) — a real regression.
        cand.processes[1].navg_plus_tu = 200.0;
        // P01: 1.75 → 1.0 tu — an improvement.
        cand.processes[0].navg_plus_tu = 1.0;
        let report = diff(&base, &cand, DiffOptions::default());
        assert_eq!(report.regressions(), 1);
        assert_eq!(report.improvements(), 1);
        assert!(report.has_regressions());
        assert_eq!(report.rows[0].process, "P13");
        assert_eq!(report.rows[0].verdict, Verdict::Regression);
        assert_eq!(report.rows.last().unwrap().verdict, Verdict::Improvement);
    }

    #[test]
    fn absolute_floor_suppresses_noise_on_tiny_types() {
        let mut base = sample_record();
        let mut cand = sample_record();
        base.processes[0].navg_plus_tu = 0.010;
        cand.processes[0].navg_plus_tu = 0.020; // +100 % but only 0.01 tu
        let report = diff(&base, &cand, DiffOptions::default());
        let p01 = report.rows.iter().find(|r| r.process == "P01").unwrap();
        assert_eq!(p01.verdict, Verdict::Unchanged);
    }

    #[test]
    fn added_and_removed_processes_are_reported() {
        let base = sample_record();
        let mut cand = sample_record();
        cand.processes.remove(0); // P01 removed
        cand.processes.push(stats_for("P15"));
        let report = diff(&base, &cand, DiffOptions::default());
        let by = |p: &str| report.rows.iter().find(|r| r.process == p).unwrap().verdict;
        assert_eq!(by("P01"), Verdict::Removed);
        assert_eq!(by("P15"), Verdict::Added);
        assert!(!report.has_regressions());
    }

    #[test]
    fn config_mismatch_warns() {
        let base = sample_record();
        let mut cand = sample_record();
        cand.engine = "mtm-engine".into();
        cand.datasize = 0.1;
        cand.periods = 5;
        let report = diff(&base, &cand, DiffOptions::default());
        assert_eq!(report.config_warnings.len(), 3);
    }

    fn stats_for(p: &str) -> crate::record::ProcessStats {
        crate::record::ProcessStats {
            process: p.into(),
            instances: 1,
            failures: 0,
            navg_tu: 1.0,
            stddev_tu: 0.0,
            navg_plus_tu: 1.0,
            comm_tu: 0.5,
            mgmt_tu: 0.0,
            proc_tu: 0.5,
        }
    }
}
