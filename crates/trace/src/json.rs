//! A minimal JSON value model with serializer and parser.
//!
//! The workspace policy is "no new third-party dependencies", and the trace
//! crate must stay embeddable everywhere, so the few hundred lines of JSON
//! needed by the exporters live here. Objects preserve insertion order so
//! serialized records are stable and diff-friendly.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation (used for committed run
    /// records, which humans read and git diffs).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's f64 Display is the shortest representation that
        // round-trips, which is exactly what a record file wants.
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal, expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // fast path: run of plain bytes
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            offset: start,
            message: format!("bad number '{text}'"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Json::obj(vec![
            ("name", Json::str("hash_join")),
            ("count", Json::num(42.0)),
            ("ratio", Json::num(0.1)),
            ("neg", Json::num(-3.5)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::num(1.0), Json::str("a\"b\\c\n")]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        for text in [v.render(), v.render_pretty()] {
            let back = Json::parse(&text).expect("parse");
            assert_eq!(back, v, "{text}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::num(42.0).render(), "42");
        assert_eq!(Json::num(0.05).render(), "0.05");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#"["Aé", "😀", "\t\\"]"#).unwrap();
        let arr = v.as_arr().unwrap();
        assert_eq!(arr[0].as_str(), Some("Aé"));
        assert_eq!(arr[1].as_str(), Some("😀"));
        assert_eq!(arr[2].as_str(), Some("\t\\"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "nul",
            "1 2",
            "\"abc",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n": 3, "s": "x", "f": 1.5}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("f").and_then(Json::as_u64), None);
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
    }
}
